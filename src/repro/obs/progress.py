"""Live sweep progress: shared counters, ETA, and the TTY status line.

:class:`SweepProgress` is the single source of truth for "how far along
is this sweep": the sweep engine updates it as jobs resolve, the HTTP
``/progress`` endpoint reads it from its serving thread, and
:class:`ProgressPrinter` renders it as a terminal status line.

The ETA comes from the per-job wall-time measurements the sweep engine
feeds in (the same observations that land in the
``repro_sweep_job_seconds`` histogram): ``remaining * mean_job_seconds
/ workers``, falling back to the overall completion rate before any
executed job has finished.  Cache/store hits complete in microseconds
and are excluded from the mean, so the estimate tracks the jobs that
actually cost something.

:class:`ProgressPrinter` adapts to its stream: on a TTY it repaints one
``\\r``-terminated line (throttled to ~10 Hz); on anything else (CI
logs, pipes) it prints a plain line every few seconds and always prints
the final state, so non-interactive logs show a bounded, readable
trickle instead of control characters.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Iterable, Mapping, Optional, TextIO

#: Serving-outcome names, in display order (mirrors SweepStats; the
#: "fabric" outcome counts jobs executed by remote fabric workers).
OUTCOMES = ("cached", "store", "parallel", "serial", "fabric")


class SweepProgress:
    """Thread-safe counters for one sweep, snapshot-able at any time."""

    def __init__(self, total: int = 0, workers: int = 1) -> None:
        self._lock = threading.Lock()
        self.total = total
        self.workers = max(1, workers)
        self.done = 0
        self.outcomes: Dict[str, int] = {name: 0 for name in OUTCOMES}
        self.events: Dict[str, int] = {}
        self._job_seconds_sum = 0.0
        self._job_seconds_count = 0
        self._started = time.monotonic()
        self._finished: Optional[float] = None
        self._listeners: list = []

    # -- wiring --------------------------------------------------------
    def begin(self, total: int, workers: int = 1) -> None:
        """(Re)arm for a sweep of ``total`` jobs on ``workers`` workers.

        Resets every counter, so one progress object can be reused
        across consecutive sweeps.
        """
        with self._lock:
            self.total = total
            self.workers = max(1, workers)
            self.done = 0
            self.outcomes = {name: 0 for name in OUTCOMES}
            self.events = {}
            self._job_seconds_sum = 0.0
            self._job_seconds_count = 0
            self._started = time.monotonic()
            self._finished = None
        self._notify()

    def subscribe(self, listener) -> None:
        """``listener(progress)`` is called after every update.

        Several listeners may coexist (e.g. the TTY printer and the
        SSE event bus); they are called in subscription order.
        """
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in list(self._listeners):
            listener(self)

    # -- updates (called by the sweep engine) --------------------------
    def job_done(self, outcome: str, seconds: Optional[float] = None) -> None:
        """Record one resolved job and, if executed, its wall time."""
        with self._lock:
            self.done += 1
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if seconds is not None:
                self._job_seconds_sum += seconds
                self._job_seconds_count += 1
        self._notify()

    def note_event(self, name: str) -> None:
        """Count one robustness event (timeout, retry, pool_break...)."""
        with self._lock:
            self.events[name] = self.events.get(name, 0) + 1
        self._notify()

    def finish(self) -> None:
        """Freeze the elapsed clock (the sweep is complete)."""
        with self._lock:
            if self._finished is None:
                self._finished = time.monotonic()
        self._notify()

    # -- reading -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: totals, outcomes, rates, ETA.

        ``eta_seconds`` is None until it can be estimated; ``hit_rate``
        is the fraction of resolved jobs served without simulating
        (in-process cache + store).
        """
        with self._lock:
            end = self._finished
            elapsed = (end if end is not None else time.monotonic()) - self._started
            done = self.done
            total = self.total
            outcomes = dict(self.outcomes)
            events = dict(self.events)
            mean_job = (
                self._job_seconds_sum / self._job_seconds_count
                if self._job_seconds_count
                else None
            )
            workers = self.workers
            finished = end is not None
        remaining = max(0, total - done)
        eta: Optional[float] = None
        if finished or remaining == 0:
            eta = 0.0
        elif mean_job is not None:
            eta = remaining * mean_job / workers
        elif done and elapsed > 0:
            eta = remaining / (done / elapsed)
        served = outcomes.get("cached", 0) + outcomes.get("store", 0)
        return {
            "total": total,
            "done": done,
            "remaining": remaining,
            "percent": (100.0 * done / total) if total else 0.0,
            "outcomes": outcomes,
            "events": events,
            "elapsed_seconds": elapsed,
            "mean_job_seconds": mean_job,
            "eta_seconds": eta,
            "hit_rate": (served / done) if done else None,
            "workers": workers,
            "finished": finished,
        }


def merge_snapshots(
    snapshots: Iterable[Mapping[str, object]],
) -> Dict[str, object]:
    """Aggregate several progress snapshots into one fleet-wide view.

    Used by the fabric coordinator, whose ``/progress`` endpoint spans
    every active sweep (one :class:`SweepProgress` each): counts sum,
    the elapsed clock is the longest of the sources (they overlap in
    wall time), the ETA is the slowest outstanding estimate, and the
    merged view is ``finished`` only when every source is.  An empty
    input merges to an all-zero finished snapshot.
    """
    merged: Dict[str, object] = {
        "total": 0,
        "done": 0,
        "remaining": 0,
        "percent": 0.0,
        "outcomes": {},
        "events": {},
        "elapsed_seconds": 0.0,
        "mean_job_seconds": None,
        "eta_seconds": None,
        "hit_rate": None,
        "workers": 0,
        "finished": True,
        "sources": 0,
    }
    outcomes: Dict[str, int] = {}
    events: Dict[str, int] = {}
    means = []
    etas = []
    for snapshot in snapshots:
        merged["sources"] += 1
        merged["total"] += int(snapshot.get("total", 0))
        merged["done"] += int(snapshot.get("done", 0))
        merged["workers"] += int(snapshot.get("workers", 0))
        merged["elapsed_seconds"] = max(
            merged["elapsed_seconds"], float(snapshot.get("elapsed_seconds", 0.0))
        )
        merged["finished"] = merged["finished"] and bool(
            snapshot.get("finished", False)
        )
        for name, count in dict(snapshot.get("outcomes", {})).items():
            outcomes[name] = outcomes.get(name, 0) + int(count)
        for name, count in dict(snapshot.get("events", {})).items():
            events[name] = events.get(name, 0) + int(count)
        if snapshot.get("mean_job_seconds") is not None:
            means.append(float(snapshot["mean_job_seconds"]))
        if not snapshot.get("finished") and snapshot.get("eta_seconds") is not None:
            etas.append(float(snapshot["eta_seconds"]))
    merged["outcomes"] = outcomes
    merged["events"] = events
    merged["remaining"] = max(0, merged["total"] - merged["done"])
    if merged["total"]:
        merged["percent"] = 100.0 * merged["done"] / merged["total"]
    if means:
        merged["mean_job_seconds"] = sum(means) / len(means)
    if merged["finished"] or merged["remaining"] == 0:
        merged["eta_seconds"] = 0.0
    elif etas:
        merged["eta_seconds"] = max(etas)
    served = outcomes.get("cached", 0) + outcomes.get("store", 0)
    if merged["done"]:
        merged["hit_rate"] = served / merged["done"]
    return merged


def _fmt_duration(seconds: float) -> str:
    """Compact duration: ``850ms``, ``12.3s``, ``4m08s``, ``1h02m``."""
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 100:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 100:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_line(snapshot: Dict[str, object]) -> str:
    """One-line human rendering of a progress snapshot."""
    total = snapshot["total"]
    done = snapshot["done"]
    parts = [f"sweep {done}/{total} ({snapshot['percent']:.0f}%)"]
    outcomes = snapshot["outcomes"]
    served = ", ".join(
        f"{outcomes[name]} {name}"
        for name in OUTCOMES
        if outcomes.get(name)
    )
    if served:
        parts.append(served)
    events = snapshot["events"]
    if events:
        parts.append(
            ", ".join(f"{count} {name}" for name, count in sorted(events.items()))
        )
    eta = snapshot["eta_seconds"]
    if snapshot["finished"]:
        parts.append(f"done in {_fmt_duration(snapshot['elapsed_seconds'])}")
    elif eta is not None:
        parts.append(f"eta {_fmt_duration(eta)}")
    hit_rate = snapshot["hit_rate"]
    if hit_rate is not None:
        parts.append(f"hit {hit_rate * 100:.0f}%")
    return " | ".join(parts)


class ProgressPrinter:
    """Renders a :class:`SweepProgress` onto a terminal or log stream.

    Subscribe it (``progress.subscribe(printer.on_change)``) and it
    repaints on every update, throttled per the stream kind; call
    :meth:`close` to emit the final state and release the line.
    """

    def __init__(
        self,
        progress: SweepProgress,
        stream: Optional[TextIO] = None,
        min_interval: Optional[float] = None,
    ) -> None:
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        try:
            self.is_tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self.is_tty = False
        self.min_interval = (
            min_interval if min_interval is not None
            else (0.1 if self.is_tty else 5.0)
        )
        # None = nothing painted yet, so the first update always paints
        # (0.0 would wrongly throttle it on hosts whose monotonic clock
        # is still below min_interval, i.e. recently booted machines).
        self._last_paint: Optional[float] = None
        self._last_width = 0
        self._closed = False

    def on_change(self, progress: SweepProgress) -> None:
        """Listener hook: repaint if the throttle interval has passed."""
        self.update()

    def update(self, force: bool = False) -> None:
        """Repaint the line (subject to throttling unless ``force``)."""
        if self._closed:
            return
        now = time.monotonic()
        if (
            not force
            and self._last_paint is not None
            and (now - self._last_paint) < self.min_interval
        ):
            return
        self._last_paint = now
        line = render_line(self.progress.snapshot())
        if self.is_tty:
            padding = " " * max(0, self._last_width - len(line))
            self.stream.write("\r" + line + padding)
            self._last_width = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Paint the final state and terminate the status line."""
        if self._closed:
            return
        self.update(force=True)
        if self.is_tty:
            self.stream.write("\n")
            self.stream.flush()
        self._closed = True
