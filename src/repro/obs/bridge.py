"""Bridges from existing instrumentation into the metrics registry.

The simulator already measures itself — ``RunResult.stats`` carries the
end-of-run counter bag, ``System.loop_stats`` the main-loop accounting,
and the telemetry :class:`~repro.telemetry.tracer.Tracer` its per-kind
event counts.  This module folds those *coarse per-run totals* into the
process-wide metrics registry, once per completed run — never per
cycle, so the simulated machine stays free of metrics calls on its hot
paths (and of wall-clock reads entirely; everything here is counts).

Called by ``System._collect`` with the default registry; a disabled
registry returns immediately.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.metrics import MetricsRegistry

# lint: metric-names(repro_run_dram_reads_total, repro_run_dram_writes_total, repro_run_prefetches_total)
#: ``RunResult.stats`` keys mirrored as per-run counters, with the
#: metric suffix each one feeds (coarse DRAM/prefetch traffic totals).
_STAT_BRIDGES = (
    ("dram.issued_reads", "dram_reads"),
    ("dram.issued_writes", "dram_writes"),
    ("pb.inserts", "prefetches"),
)


def publish_run(
    registry: MetricsRegistry,
    result,
    loop_stats: Mapping[str, object],
) -> None:
    """Fold one completed run's totals into ``registry``.

    ``result`` is a :class:`~repro.system.results.RunResult` (typed
    loosely to keep this package import-light); ``loop_stats`` is the
    owning ``System.loop_stats`` mapping.
    """
    if not registry.enabled:
        return
    mode = str(loop_stats.get("mode", "")) or "unknown"
    registry.counter(
        "repro_runs_completed_total",
        "Completed simulation runs, by configuration and loop mode.",
        ("config", "loop_mode"),
    ).inc(config=result.config_name, loop_mode=mode)
    registry.counter(
        "repro_run_cycles_total", "Simulated MC cycles across all runs."
    ).inc(result.cycles)
    registry.counter(
        "repro_run_instructions_total", "Retired instructions across all runs."
    ).inc(result.instructions)
    registry.counter(
        "repro_loop_ticks_total",
        "Main-loop ticks actually executed, by loop mode.",
        ("loop_mode",),
    ).inc(loop_stats.get("ticks_executed", 0), loop_mode=mode)
    registry.counter(
        "repro_loop_jumps_total", "Event-driven fast-forward jumps taken."
    ).inc(loop_stats.get("jumps", 0))
    registry.counter(
        "repro_loop_cycles_skipped_total",
        "Cycles covered by fast-forward jumps instead of ticks.",
    ).inc(loop_stats.get("cycles_skipped", 0))
    stats = result.stats
    for stat_key, suffix in _STAT_BRIDGES:
        value = stats.get(stat_key, 0)
        if value:
            # the emitted family is declared by the metric-names pragma
            # at _STAT_BRIDGES
            registry.counter(  # lint: metric-dynamic
                f"repro_run_{suffix}_total",
                f"Per-run total of the {stat_key} counter.",
            ).inc(value)


def publish_tracer(registry: MetricsRegistry, tracer) -> None:
    """Mirror a tracer's per-kind event counts and overhead.

    ``tracer`` is a :class:`~repro.telemetry.tracer.Tracer`; its
    :meth:`~repro.telemetry.tracer.Tracer.metrics_snapshot` is the
    small bridge API the telemetry package exposes for exactly this.
    """
    if not registry.enabled:
        return
    snapshot = tracer.metrics_snapshot()
    events = registry.counter(
        "repro_telemetry_events_total",
        "Telemetry events emitted across traced runs, by kind.",
        ("kind",),
    )
    for kind, count in sorted(snapshot["events"].items()):
        events.inc(count, kind=kind)
    registry.counter(
        "repro_telemetry_overhead_seconds_total",
        "Self-measured wall clock spent inside tracer dispatch.",
    ).inc(snapshot["overhead_seconds"])
