"""Process-wide metrics registry: labeled counters, gauges, histograms.

This is the *fleet-level* counterpart of :mod:`repro.telemetry`: where
the tracer answers "what happened inside this one run, cycle by
cycle", the metrics registry answers "what is this process doing across
many runs" — jobs executed, store hits, wall time spent — in a shape
Prometheus (or any text scraper) understands.

The enablement model mirrors ``NULL_TRACER``:

* :data:`NULL_METRICS` is a shared, permanently *disabled* registry.
  Every mutator (``inc``/``set``/``observe``) on an instrument of a
  disabled registry returns immediately — no locking, no dict writes,
  no clock reads — so uninstrumented runs pay one attribute check per
  instrumented site and nothing else.
* :func:`default_registry` returns the process-wide registry
  instrumented call sites use.  It is :data:`NULL_METRICS` unless
  ``REPRO_METRICS=1`` is exported or the CLI installed a live registry
  via :func:`set_default_registry` (``repro sweep --metrics-port``
  does).

Instruments are registered by name and idempotent: asking the same
registry for the same name returns the same instrument, and asking
with a different type or label set raises — two call sites can never
silently write into differently-shaped metrics under one name.

Mutation is thread-safe (the HTTP endpoint of :mod:`repro.obs.server`
reads registries from a second thread); the enabled-path cost is one
lock acquisition per update, which is negligible at the per-job /
per-run granularity this subsystem operates at (never per simulated
cycle — that is the tracer's domain).
"""

from __future__ import annotations

import os
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "set_default_registry",
]

#: Upper bucket bounds (seconds) used when a histogram does not pass
#: its own; tuned for per-job wall times from milliseconds to minutes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric/label name, or a name re-registered differently."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


class _Instrument:
    """Common machinery: naming, label resolution, child state, lock."""

    kind = ""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    # -- shared plumbing ----------------------------------------------
    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        """Resolve ``**labels`` kwargs into the ordered child key."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels-dict, value)`` per child, sorted by label values.

        Counter/gauge values are floats; histogram values are
        ``(bucket_counts, sum, count)`` with one count per upper bound
        plus a final +Inf slot.  Taken under the lock, so exporters see
        a consistent snapshot.
        """
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), self._export(value))
            for key, value in items
        ]

    def _export(self, value: object) -> object:
        return value


class Counter(_Instrument):
    """Monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to the child named by ``labels``."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"{self.name}: counters cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one child (0.0 when never incremented)."""
        return float(self._children.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """Labeled value that can go up and down (set or adjusted)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the child named by ``labels`` with ``value``."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the child by ``amount`` (may be negative)."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the child by ``-amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value of one child (0.0 when never set)."""
        return float(self._children.get(self._key(labels), 0.0))


class _HistogramChild:
    """Bucket counts + running sum/count for one label combination."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Labeled histogram with fixed upper-bound buckets.

    Exported Prometheus-style: cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"{name}: a histogram needs >= 1 bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        """Record one measurement into the child named by ``labels``."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets))
            child.counts[bisect_left(self.buckets, value)] += 1
            child.sum += value
            child.count += 1

    def _export(self, value: object) -> object:
        child = value
        return (list(child.counts), child.sum, child.count)

    def mean(self, **labels: object) -> float:
        """Mean of observed values for one child (0.0 when empty)."""
        child = self._children.get(self._key(labels))
        if child is None or child.count == 0:
            return 0.0
        return child.sum / child.count


class MetricsRegistry:
    """A named collection of instruments with one enablement switch.

    ``enabled=False`` registries hand out instruments whose mutators
    are no-ops; :data:`NULL_METRICS` is the shared disabled instance
    instrumented code defaults to (see the module docstring).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- registration --------------------------------------------------
    def _register(self, cls, name, help, labelnames, **extra) -> _Instrument:
        _check_name(name)
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames!r}"
                    )
                return existing
            instrument = cls(self, name, help, labelnames, **extra)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._register(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._register(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._register(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    # -- introspection -------------------------------------------------
    def collect(self) -> List[_Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[n] for n in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)


#: The shared, permanently disabled registry instrumented call sites
#: default to — the metrics analogue of ``NULL_TRACER``.
NULL_METRICS = MetricsRegistry(enabled=False)

_default: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented call sites report into.

    Resolution order: a registry installed by
    :func:`set_default_registry`, else a fresh live registry when
    ``REPRO_METRICS`` is set to anything but ``0``/empty, else
    :data:`NULL_METRICS`.  The decision is cached; tests use
    :func:`reset_default_registry` to re-read the environment.
    """
    global _default
    if _default is None:
        if os.environ.get("REPRO_METRICS", "0") not in ("", "0"):
            _default = MetricsRegistry(enabled=True)
        else:
            _default = NULL_METRICS
    return _default


def set_default_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install ``registry`` as the process default (None = re-resolve)."""
    global _default
    _default = registry


def reset_default_registry() -> None:
    """Forget the cached default so the environment is consulted again."""
    set_default_registry(None)
