"""Span-based wall-clock tracing for the sweep/fabric pipeline.

Where :mod:`repro.obs.metrics` counts *what* happened, spans record
*where the time went*: every unit of work (a sweep, a job, a lease, a
worker execution) becomes one record with a trace id, a span id, an
optional parent span id, a wall-clock start, a duration, and free-form
attributes.  Records from different processes — the pool parent, the
fabric coordinator, remote workers — stitch into one tree as long as
they share trace/parent ids, which the fabric carries on the wire
(protocol v3, see docs/fabric.md).

The collector follows the same disabled-by-default contract as
``NULL_TRACER`` / ``NULL_METRICS``: instrumented sites ask
:func:`default_collector`, which resolves to the shared, permanently
disabled :data:`NULL_SPANS` unless the process installed a live
collector (``set_default_collector``, the CLI does) or the environment
exports ``REPRO_SPANS=1``.  ``SpanCollector.span`` on a disabled
collector returns the shared no-op :data:`NULL_SPAN` before any id
generation or clock read, so the off state costs one branch per site.

Finished spans are stored as plain JSON-ready dicts in a bounded deque
(oldest evicted first, evictions counted), which makes fleet ingestion
(:meth:`SpanCollector.ingest`), snapshot export (:func:`write_spans`)
and the Chrome trace-event conversion (:func:`to_chrome_trace`)
operate on one shape.  Wall-clock reads are legitimate here — the span
plane measures the host, not the simulated machine (``repro/obs/`` is
on the DET001 allowlist, see docs/linting.md).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Union,
)

from repro.obs.paths import spans_dir

#: Schema version of encoded spans and span snapshot documents.
SPANS_VERSION = 1

#: Default bound of the in-memory collector (finished spans kept).
DEFAULT_CAPACITY = 4096


class SpanError(ValueError):
    """An encoded span (or span context) violates the schema."""


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


# ---------------------------------------------------------------------------
# encoded form


def make_span(
    name: str,
    start_unix: float,
    duration_s: float,
    trace_id: str,
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    status: str = "ok",
    attributes: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the encoded (wire/snapshot) form of one finished span."""
    return {
        "name": str(name),
        "trace": str(trace_id),
        "span": span_id if span_id is not None else _new_span_id(),
        "parent": parent_id,
        "start_unix": float(start_unix),
        "duration_s": max(0.0, float(duration_s)),
        "status": str(status),
        "attrs": dict(attributes or {}),
    }


def check_span(document: Any) -> Dict[str, Any]:
    """Validate an encoded span (e.g. off the wire); returns a copy.

    Raises :class:`SpanError` on any shape violation so a skewed or
    malicious worker cannot poison the coordinator's span store.
    """
    if not isinstance(document, Mapping):
        raise SpanError("span must be a JSON object")
    for field_name in ("name", "trace", "span", "status"):
        value = document.get(field_name)
        if not isinstance(value, str) or not value:
            raise SpanError(f"span field '{field_name}' must be a non-empty string")
    parent = document.get("parent")
    if parent is not None and not isinstance(parent, str):
        raise SpanError("span field 'parent' must be a string or null")
    for field_name in ("start_unix", "duration_s"):
        value = document.get(field_name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpanError(f"span field '{field_name}' must be a number")
    attrs = document.get("attrs", {})
    if not isinstance(attrs, Mapping):
        raise SpanError("span field 'attrs' must be an object")
    unknown = set(document) - {
        "name", "trace", "span", "parent", "start_unix", "duration_s",
        "status", "attrs",
    }
    if unknown:
        raise SpanError(f"unknown span fields: {sorted(unknown)}")
    return make_span(
        document["name"], document["start_unix"], document["duration_s"],
        document["trace"], span_id=document["span"], parent_id=parent,
        status=document["status"], attributes=attrs,
    )


def check_context(value: Any, where: str = "trace context") -> Optional[Dict[str, str]]:
    """Validate a wire trace context; returns ``{"trace", "span"}`` or None."""
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise SpanError(f"{where} must be an object or null")
    trace = value.get("trace")
    span = value.get("span")
    if not isinstance(trace, str) or not trace:
        raise SpanError(f"{where} needs a non-empty 'trace' id")
    if not isinstance(span, str) or not span:
        raise SpanError(f"{where} needs a non-empty 'span' id")
    return {"trace": trace, "span": span}


ParentLike = Union["Span", Mapping[str, Any], None]


def _resolve_parent(parent: ParentLike, trace_id: Optional[str]):
    """``(trace id, parent span id)`` from a Span / context / nothing."""
    if parent is None:
        return (trace_id if trace_id else new_trace_id()), None
    if isinstance(parent, Span):
        return parent.trace_id, parent.span_id
    if isinstance(parent, Mapping):
        trace = parent.get("trace")
        span = parent.get("span")
        if isinstance(trace, str) and trace and isinstance(span, str) and span:
            return trace, span
        raise SpanError("parent context needs 'trace' and 'span' ids")
    raise SpanError(f"cannot parent a span on {type(parent).__name__}")


# ---------------------------------------------------------------------------
# live handles


class Span:
    """A live, in-flight span; finishes into its collector.

    Usable as a context manager — an exception escaping the block
    flips the status to ``"error"`` (and re-raises).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_unix",
                 "attributes", "status", "_collector", "_t0", "_done")

    #: Mirrors the tracer/metrics guard idiom: sites may skip attribute
    #: computation entirely when the span is the shared null handle.
    enabled = True

    def __init__(self, collector: "SpanCollector", name: str,
                 trace_id: str, parent_id: Optional[str],
                 attributes: Dict[str, Any]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = "ok"
        self._collector = collector
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        self._done = False

    def set_attr(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def context(self) -> Dict[str, str]:
        """The wire-portable ``{"trace", "span"}`` context of this span."""
        return {"trace": self.trace_id, "span": self.span_id}

    def finish(self, status: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """Record the span (idempotent); returns the encoded form."""
        if self._done:
            return None
        self._done = True
        if status is not None:
            self.status = status
        document = make_span(
            self.name, self.start_unix, time.perf_counter() - self._t0,
            self.trace_id, span_id=self.span_id, parent_id=self.parent_id,
            status=self.status, attributes=self.attributes,
        )
        self._collector.record(document)
        return document

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self.finish("error" if exc_type is not None else None)
        return False


class _NullSpan:
    """Shared no-op stand-in returned by disabled collectors."""

    __slots__ = ()
    enabled = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"

    def set_attr(self, **_attributes: Any) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None

    def finish(self, _status: Optional[str] = None) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# the collector


class SpanCollector:
    """Bounded, thread-safe store of finished spans (encoded dicts)."""

    def __init__(self, enabled: bool = True, capacity: int = DEFAULT_CAPACITY):
        self.enabled = enabled
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []

    def span(self, name: str, parent: ParentLike = None,
             trace_id: Optional[str] = None, **attributes: Any):
        """Open a live span; no-op handle when the collector is disabled."""
        if not self.enabled:
            return NULL_SPAN
        trace, parent_id = _resolve_parent(parent, trace_id)
        return Span(self, name, trace, parent_id, dict(attributes))

    def add(self, name: str, start_unix: float, duration_s: float,
            parent: ParentLike = None, trace_id: Optional[str] = None,
            status: str = "ok", **attributes: Any) -> Optional[Dict[str, Any]]:
        """Record an already-measured span (e.g. from worker timing stamps)."""
        if not self.enabled:
            return None
        trace, parent_id = _resolve_parent(parent, trace_id)
        document = make_span(name, start_unix, duration_s, trace,
                             parent_id=parent_id, status=status,
                             attributes=attributes)
        self.record(document)
        return document

    def record(self, document: Dict[str, Any]) -> None:
        """Append one encoded span; oldest evicted at capacity."""
        if not self.enabled:
            return
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(document)
            listeners = list(self._listeners)
        for listener in listeners:  # outside the lock: listeners may block
            listener(document)

    def ingest(self, documents: Iterable[Mapping[str, Any]]) -> int:
        """Validate and record remotely-produced spans; returns the count."""
        count = 0
        if not self.enabled:
            return count
        for document in documents:
            self.record(check_span(document))
            count += 1
        return count

    def spans(self) -> List[Dict[str, Any]]:
        """A point-in-time copy of every stored span, oldest first."""
        with self._lock:
            return list(self._spans)

    def subscribe(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        """Call ``listener(encoded_span)`` on every recorded span."""
        with self._lock:
            self._listeners.append(listener)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    @property
    def dropped(self) -> int:
        """Spans evicted because the collector was full."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The shared, permanently disabled collector (the default).
NULL_SPANS = SpanCollector(enabled=False)

_default_lock = threading.Lock()
_default: Optional[SpanCollector] = None
_default_resolved: Optional[SpanCollector] = None


def default_collector() -> SpanCollector:
    """The process-wide collector instrumented sites report to.

    Resolution (cached): ``set_default_collector`` > ``REPRO_SPANS``
    env (any value but ""/"0" enables a live collector) > NULL_SPANS.
    """
    global _default_resolved
    with _default_lock:
        if _default_resolved is None:
            if _default is not None:
                _default_resolved = _default
            elif os.environ.get("REPRO_SPANS", "") not in ("", "0"):
                _default_resolved = SpanCollector(enabled=True)
            else:
                _default_resolved = NULL_SPANS
        return _default_resolved


def set_default_collector(collector: SpanCollector) -> None:
    """Install ``collector`` as the process-wide default (CLI/fleet)."""
    global _default, _default_resolved
    with _default_lock:
        _default = collector
        _default_resolved = collector


def reset_default_collector() -> None:
    """Forget any installed default (tests; CLI teardown)."""
    global _default, _default_resolved
    with _default_lock:
        _default = None
        _default_resolved = None


# ---------------------------------------------------------------------------
# snapshots and export


def write_spans(source: Union[SpanCollector, Iterable[Mapping[str, Any]]],
                directory: Optional[str] = None,
                filename: str = "latest.json") -> str:
    """Atomically dump spans as a versioned JSON snapshot; returns the path.

    Defaults to ``<store-root>/spans/latest.json``, next to the metrics
    snapshot the same run wrote.
    """
    spans = source.spans() if isinstance(source, SpanCollector) else list(source)
    document = {
        "version": SPANS_VERSION,
        "generated_unix": time.time(),
        "spans": spans,
    }
    directory = directory if directory is not None else spans_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a span snapshot back; validates every span."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, Mapping) or "spans" not in document:
        raise SpanError(f"{path} is not a span snapshot")
    return [check_span(span) for span in document["spans"]]


def to_chrome_trace(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert spans to Chrome trace-event JSON (Perfetto-loadable).

    Spans land as complete (``"ph": "X"``) events on one process, with
    one named thread lane per distinct ``worker`` attribute (local
    spans share the ``"main"`` lane); timestamps are rebased to the
    earliest span so the viewer opens at t=0.
    """
    ordered = sorted(spans, key=lambda doc: doc["start_unix"])
    base = ordered[0]["start_unix"] if ordered else 0.0
    lanes: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for doc in ordered:
        attrs = dict(doc.get("attrs", {}))
        lane = str(attrs.get("worker", "main"))
        tid = lanes.setdefault(lane, len(lanes) + 1)
        events.append({
            "ph": "X",
            "name": doc["name"],
            "cat": doc["name"].split(".", 1)[0],
            "ts": int(round((doc["start_unix"] - base) * 1e6)),
            "dur": int(round(doc["duration_s"] * 1e6)),
            "pid": 1,
            "tid": tid,
            "args": {**attrs, "trace": doc["trace"], "span": doc["span"],
                     "parent": doc.get("parent"), "status": doc["status"]},
        })
    metadata = [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
         "args": {"name": lane}}
        for lane, tid in sorted(lanes.items(), key=lambda item: item[1])
    ]
    return {"displayTimeUnit": "ms", "traceEvents": metadata + events}
