"""Metrics exporters: Prometheus text exposition and JSON snapshots.

Two serializations of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_exposition` — Prometheus text exposition format 0.0.4
  (the ``# HELP`` / ``# TYPE`` / sample-line shape every scraper and
  ``promtool`` understand), served live at ``/metrics`` by
  :mod:`repro.obs.server`;
* :func:`registry_snapshot` / :func:`write_snapshot` — a JSON document
  carrying the same data (plus an optional sweep-progress section),
  written per sweep to ``.repro-results/metrics/latest.json`` so a
  finished sweep's counters survive the process and can be re-served
  later (``repro obs serve --dir``) or archived as a CI artifact.

:func:`exposition_from_snapshot` renders a stored snapshot back into
exposition text, and :func:`parse_exposition` parses exposition sample
lines into a flat dict — the round-trip the obs CI smoke test and the
endpoint tests assert on.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs import paths
from repro.obs.metrics import MetricsRegistry

#: Schema version of the JSON snapshot document.
SNAPSHOT_VERSION = 1

#: Content type ``/metrics`` responses are served under.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """Prometheus sample-value text: integral floats without the dot."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _merged(labels: Mapping[str, str], extra: Mapping[str, str]) -> Dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def _histogram_lines(
    name: str,
    labels: Mapping[str, str],
    buckets: List[float],
    counts: List[float],
    total: float,
    count: float,
) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one child."""
    lines = []
    cumulative = 0.0
    for bound, bucket_count in zip(list(buckets) + ["+Inf"], counts):
        cumulative += bucket_count
        le = "+Inf" if bound == "+Inf" else _fmt(bound)
        bucket_labels = _merged(labels, {"le": le})
        lines.append(f"{name}_bucket{_labels_text(bucket_labels)} {_fmt(cumulative)}")
    lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(total)}")
    lines.append(f"{name}_count{_labels_text(labels)} {_fmt(count)}")
    return lines


def render_exposition(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for instrument in registry.collect():
        samples = instrument.samples()
        if not samples:
            continue
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for labels, value in samples:
            if instrument.kind == "histogram":
                counts, total, count = value
                lines.extend(
                    _histogram_lines(
                        instrument.name, labels, list(instrument.buckets),
                        counts, total, count,
                    )
                )
            else:
                lines.append(
                    f"{instrument.name}{_labels_text(labels)} {_fmt(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_snapshot(
    registry: MetricsRegistry,
    progress: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """JSON-ready document of every metric (plus optional progress).

    ``progress`` is a plain mapping (typically
    ``SweepProgress.snapshot()``) embedded verbatim under the
    ``"progress"`` key so one file captures both the counters and the
    final sweep state.
    """
    metrics: List[Dict[str, object]] = []
    for instrument in registry.collect():
        entry: Dict[str, object] = {
            "name": instrument.name,
            "type": instrument.kind,
            "help": instrument.help,
            "labelnames": list(instrument.labelnames),
            "samples": [],
        }
        if instrument.kind == "histogram":
            entry["buckets"] = list(instrument.buckets)
        for labels, value in instrument.samples():
            if instrument.kind == "histogram":
                counts, total, count = value
                entry["samples"].append(
                    {"labels": labels, "counts": counts,
                     "sum": total, "count": count}
                )
            else:
                entry["samples"].append({"labels": labels, "value": value})
        metrics.append(entry)
    document: Dict[str, object] = {
        "version": SNAPSHOT_VERSION,
        "generated_unix": time.time(),
        "metrics": metrics,
    }
    if progress is not None:
        document["progress"] = dict(progress)
    return document


def write_snapshot(
    registry: MetricsRegistry,
    directory: Optional[str] = None,
    progress: Optional[Mapping[str, object]] = None,
    filename: str = "latest.json",
) -> str:
    """Atomically write one snapshot file; returns its path.

    ``directory`` defaults to ``<store root>/metrics``
    (:func:`repro.obs.paths.metrics_dir`).
    """
    directory = paths.metrics_dir() if directory is None else directory
    os.makedirs(directory, exist_ok=True)
    document = registry_snapshot(registry, progress=progress)
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", suffix=".json", dir=directory)
    path = os.path.join(directory, filename)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path: str) -> Dict[str, object]:
    """Read one snapshot document back from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def latest_snapshot(directory: Optional[str] = None) -> Optional[Tuple[str, Dict[str, object]]]:
    """Newest readable ``(path, document)`` in a snapshot directory.

    Newest by modification time across ``*.json`` files; unreadable or
    non-JSON files are skipped.  Returns None when the directory is
    missing or holds no snapshot.
    """
    directory = paths.metrics_dir() if directory is None else directory
    try:
        names = [n for n in os.listdir(directory)
                 if n.endswith(".json") and not n.startswith(".")]
    except OSError:
        return None
    for name in sorted(
        names,
        key=lambda n: os.path.getmtime(os.path.join(directory, n)),
        reverse=True,
    ):
        path = os.path.join(directory, name)
        try:
            return path, load_snapshot(path)
        except (OSError, ValueError):
            continue
    return None


def exposition_from_snapshot(document: Mapping[str, object]) -> str:
    """Render a stored JSON snapshot back into exposition text."""
    lines: List[str] = []
    for entry in document.get("metrics", ()):
        samples = entry.get("samples", [])
        if not samples:
            continue
        name = entry["name"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample in samples:
            labels = sample.get("labels", {})
            if entry["type"] == "histogram":
                lines.extend(
                    _histogram_lines(
                        name, labels, list(entry.get("buckets", [])),
                        sample["counts"], sample["sum"], sample["count"],
                    )
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_fmt(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition sample lines into ``{(name, labels): value}``.

    ``labels`` is a tuple of sorted ``(label, value)`` pairs.  Comment
    and blank lines are skipped; malformed sample lines raise
    ``ValueError`` — the CI smoke test uses this as its "exposition
    parses" assertion.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = []
            for part in _split_labels(label_text):
                label, quoted = part.split("=", 1)
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise ValueError(f"malformed label in {raw!r}")
                value = (
                    quoted[1:-1]
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((label.strip(), value))
            key = (name.strip(), tuple(sorted(labels)))
        else:
            name, value_text = line.rsplit(None, 1)
            key = (name.strip(), ())
        out[key] = float(value_text)
    return out


def _split_labels(label_text: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in label_text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]
