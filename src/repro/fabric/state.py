"""Coordinator bookkeeping: job table, priority queue, leases, sweeps.

Pure in-memory logic with an injectable clock — no HTTP, no store, no
threads — so every failure mode (lease expiry, duplicate completion,
retry exhaustion) is unit-testable with a fake clock.  The
:class:`~repro.fabric.coordinator.Coordinator` wraps this with the
store read-through, metrics, and the HTTP surface, and serialises
access behind one lock.

Jobs are identified by their store key, so the table doubles as the
dedupe index: submitting an overlapping grid while another sweep is in
flight attaches the new sweep to the existing queued/leased jobs
instead of enqueuing duplicates.  Durability is the store's problem,
not this table's: every completed result is persisted by the
coordinator before :meth:`CoordinatorState.complete` records it, so a
restarted coordinator rebuilds exactly this state by re-running
submissions through the store read-through (finished jobs dedupe away,
unfinished ones re-queue).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import sweep

#: Job life-cycle states.
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class JobEntry:
    """One unique job known to the coordinator (keyed by store key)."""

    key: str
    job: sweep.Job  # resolved
    spec: Dict[str, object]
    priority: int = 0
    status: str = QUEUED
    sweeps: List[str] = field(default_factory=list)
    attempts: int = 0
    worker: Optional[str] = None
    lease_id: Optional[str] = None
    error: Optional[str] = None


@dataclass
class Lease:
    """One granted batch: expires as a unit, renewed by heartbeats."""

    id: str
    worker: str
    keys: List[str]
    expires: float


@dataclass
class SweepRecord:
    """One accepted submission and the job keys it resolved to."""

    id: str
    keys: List[str]
    deduped: int  # jobs already satisfied by the store at submit time


@dataclass
class WorkerInfo:
    """Liveness and lifetime counters for one worker id."""

    id: str
    last_seen: float = 0.0
    leased: int = 0
    completed: int = 0
    failed: int = 0


class CoordinatorState:
    """The scheduling state machine (single-threaded; caller locks).

    ``clock`` is any monotonic float source (``time.monotonic`` in
    production, a fake in tests); leases expire ``lease_seconds`` after
    grant/renewal.  A job whose lease expires re-queues at the front of
    its priority class until it has been attempted ``max_attempts``
    times, then fails — a job that kills every worker that touches it
    must not poison the queue forever.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
    ) -> None:
        self.clock = clock
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.jobs: Dict[str, JobEntry] = {}
        self.sweeps: Dict[str, SweepRecord] = {}
        self.leases: Dict[str, Lease] = {}
        self.workers: Dict[str, WorkerInfo] = {}
        #: (-priority, seq, key): higher priority first, FIFO within.
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._sweep_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        entries: Sequence[Tuple[str, sweep.Job, Dict[str, object], bool]],
        priority: int = 0,
    ) -> SweepRecord:
        """Register one submission.

        ``entries`` is ``(key, resolved job, spec, already_done)`` per
        grid cell — ``already_done`` meaning the coordinator's store
        read-through satisfied it at submit time.  Duplicate keys
        (within the grid or against in-flight jobs) attach rather than
        re-queue.
        """
        sweep_id = f"sweep-{next(self._sweep_ids)}"
        record = SweepRecord(id=sweep_id, keys=[], deduped=0)
        for key, job, spec, already_done in entries:
            record.keys.append(key)
            entry = self.jobs.get(key)
            if entry is None:
                entry = JobEntry(
                    key=key, job=job, spec=dict(spec), priority=priority,
                    status=DONE if already_done else QUEUED,
                )
                self.jobs[key] = entry
                if not already_done:
                    self._push(entry)
            if sweep_id not in entry.sweeps:
                entry.sweeps.append(sweep_id)
            if entry.status == DONE:
                record.deduped += 1
        self.sweeps[sweep_id] = record
        return record

    def _push(self, entry: JobEntry) -> None:
        heapq.heappush(
            self._heap, (-entry.priority, next(self._seq), entry.key)
        )

    # -- leasing --------------------------------------------------------
    def lease(self, worker: str, capacity: int) -> Optional[Lease]:
        """Grant up to ``capacity`` queued jobs to ``worker``.

        Returns None when nothing is queued.  Stale heap entries (jobs
        completed or re-queued since they were pushed) are discarded
        lazily here.
        """
        self._touch(worker)
        keys: List[str] = []
        while self._heap and len(keys) < capacity:
            _, _, key = heapq.heappop(self._heap)
            entry = self.jobs.get(key)
            if entry is None or entry.status != QUEUED:
                continue  # stale heap entry
            keys.append(key)
        if not keys:
            return None
        lease = Lease(
            id=f"lease-{next(self._lease_ids)}",
            worker=worker,
            keys=keys,
            expires=self.clock() + self.lease_seconds,
        )
        self.leases[lease.id] = lease
        info = self.workers[worker]
        for key in keys:
            entry = self.jobs[key]
            entry.status = LEASED
            entry.worker = worker
            entry.lease_id = lease.id
            entry.attempts += 1
            info.leased += 1
        return lease

    def renew(self, lease_id: str, worker: str) -> bool:
        """Heartbeat: push the lease expiry out; False if unknown/expired."""
        self._touch(worker)
        lease = self.leases.get(lease_id)
        if lease is None or lease.worker != worker:
            return False
        lease.expires = self.clock() + self.lease_seconds
        return True

    def expire_leases(self) -> List[str]:
        """Re-queue jobs of every overdue lease; returns re-queued keys.

        Called lazily from every API entry point (lease, complete,
        status), so a dead worker's jobs surface the next time anyone
        talks to the coordinator.  Jobs past ``max_attempts`` fail
        instead of re-queuing.
        """
        now = self.clock()
        requeued: List[str] = []
        for lease in [
            lease for lease in self.leases.values() if lease.expires <= now
        ]:
            del self.leases[lease.id]
            for key in lease.keys:
                entry = self.jobs.get(key)
                if entry is None or entry.status != LEASED:
                    continue
                if entry.lease_id != lease.id:
                    continue
                entry.worker = None
                entry.lease_id = None
                if entry.attempts >= self.max_attempts:
                    entry.status = FAILED
                    entry.error = (
                        f"lease expired after {entry.attempts} attempt(s); "
                        "worker presumed dead"
                    )
                else:
                    entry.status = QUEUED
                    self._push(entry)
                    requeued.append(key)
        return requeued

    # -- completion -----------------------------------------------------
    def complete(self, key: str, worker: str) -> str:
        """Record one finished job; returns ``first``/``duplicate``/
        ``unknown``.

        A worker whose lease expired may still return a correct result
        (the simulator is deterministic) — accept it unless someone else
        finished first.
        """
        self._touch(worker)
        entry = self.jobs.get(key)
        if entry is None:
            return "unknown"
        if entry.status == DONE:
            return "duplicate"
        self._detach_from_lease(entry)
        entry.status = DONE
        entry.worker = worker
        entry.error = None
        self.workers[worker].completed += 1
        return "first"

    def fail(self, key: str, worker: str, error: str) -> str:
        """Record one failed execution; re-queue or fail permanently."""
        self._touch(worker)
        entry = self.jobs.get(key)
        if entry is None:
            return "unknown"
        if entry.status == DONE:
            return "duplicate"
        self._detach_from_lease(entry)
        self.workers[worker].failed += 1
        entry.worker = None
        entry.lease_id = None
        if entry.attempts >= self.max_attempts:
            entry.status = FAILED
            entry.error = error
            return "failed"
        entry.status = QUEUED
        entry.error = error
        self._push(entry)
        return "requeued"

    def _detach_from_lease(self, entry: JobEntry) -> None:
        lease = self.leases.get(entry.lease_id) if entry.lease_id else None
        if lease is not None:
            try:
                lease.keys.remove(entry.key)
            except ValueError:
                pass
            if not lease.keys:
                del self.leases[lease.id]
        entry.lease_id = None

    def _touch(self, worker: str) -> None:
        info = self.workers.get(worker)
        if info is None:
            info = self.workers[worker] = WorkerInfo(id=worker)
        info.last_seen = self.clock()

    # -- views ----------------------------------------------------------
    def counts(self, keys: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Job counts by status, overall or for one sweep's keys."""
        counts = {QUEUED: 0, LEASED: 0, DONE: 0, FAILED: 0}
        entries = (
            [self.jobs[k] for k in keys if k in self.jobs]
            if keys is not None
            else self.jobs.values()
        )
        for entry in entries:
            counts[entry.status] += 1
        return counts

    def sweep_status(self, sweep_id: str) -> Optional[Dict[str, object]]:
        record = self.sweeps.get(sweep_id)
        if record is None:
            return None
        counts = self.counts(record.keys)
        failed = [
            {"key": key, "error": self.jobs[key].error}
            for key in record.keys
            if key in self.jobs and self.jobs[key].status == FAILED
        ]
        return {
            "sweep": record.id,
            "total": len(record.keys),
            "deduped": record.deduped,
            "counts": counts,
            "done": counts[DONE] == len(record.keys),
            "failed": failed,
        }

    def workers_view(self) -> Dict[str, Dict[str, object]]:
        now = self.clock()
        return {
            info.id: {
                "last_seen_seconds_ago": max(0.0, now - info.last_seen),
                "leased": info.leased,
                "completed": info.completed,
                "failed": info.failed,
            }
            for info in self.workers.values()
        }
