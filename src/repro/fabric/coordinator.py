"""The fabric coordinator: HTTP sweep intake, leasing, fleet obs.

:class:`Coordinator` is the scheduling core: it expands submissions
with the sweep engine's :func:`~repro.experiments.sweep.expand_grid`,
dedupes every cell against the content-addressed result store through
the shared :func:`~repro.experiments.sweep.prepare` /
:func:`~repro.experiments.sweep.lookup` read-through (exactly the code
path a local ``run_jobs`` uses), queues the rest in
:class:`~repro.fabric.state.CoordinatorState`, and persists every
returned result to the store *before* acknowledging it — which is what
makes coordinator restarts cheap: resubmitting an in-flight sweep to a
fresh coordinator re-dedupes against the store, so only genuinely
unfinished jobs re-queue.

:class:`CoordinatorServer` is the HTTP surface: it subclasses
:class:`~repro.obs.server.ObsServer`, so the whole fleet is observable
through the same ``/metrics`` (Prometheus), ``/healthz`` (plus worker
liveness), and ``/progress`` (all active sweeps merged via
:func:`~repro.obs.progress.merge_snapshots`) endpoints a local sweep
serves, and adds the ``/v1/*`` job-submission API:

* ``POST /v1/sweeps``      — submit a grid; answers sweep id + counts
* ``GET  /v1/sweeps/<id>`` — sweep status (``?results=1`` embeds the
  stored result payloads once jobs finish)
* ``POST /v1/lease``       — claim a batch under an expiring lease
* ``POST /v1/complete``    — return results / per-job errors
* ``POST /v1/heartbeat``   — extend a lease mid-batch
* ``GET  /v1/status``      — whole-fleet counts, workers, sweeps

Lease expiry is evaluated lazily on every API call (no timer thread):
a dead worker's jobs re-queue the next time any worker leases or any
client polls.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler
from typing import Dict, List, Optional, Tuple

from repro.experiments import runner, store, sweep
from repro.fabric import protocol
from repro.fabric.state import DONE, CoordinatorState
from repro.obs import spans as obs_spans
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress, merge_snapshots, render_line
from repro.obs.server import ObsServer

_log = logging.getLogger("repro.fabric.coordinator")


class Coordinator:
    """Scheduling core shared by the HTTP server and in-process tests.

    All public methods take/return wire documents (plain dicts) and are
    thread-safe behind one lock; :class:`ProtocolError` signals a bad
    request (the server maps it to HTTP 400).
    """

    def __init__(
        self,
        result_store: Optional[store.ResultStore] = None,
        registry: Optional[MetricsRegistry] = None,
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        clock=None,
        spans: Optional[obs_spans.SpanCollector] = None,
    ) -> None:
        self.store = result_store if result_store is not None else store.get_store()
        # Reap temp files orphaned by writers killed mid-put: the
        # coordinator is the long-lived process, so startup is the
        # natural sweep point.
        removed = self.store.sweep_orphans()
        if removed:
            _log.info("reaped %d orphaned temp file(s) from %s",
                      removed, self.store.root)
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        kwargs = {} if clock is None else {"clock": clock}
        self.state = CoordinatorState(
            lease_seconds=lease_seconds, max_attempts=max_attempts, **kwargs
        )
        # Unlike instrumented *sites*, the coordinator collects spans by
        # default: it is the long-lived fleet process whose /spans.json
        # serves the stitched trace (pass a disabled collector to opt
        # out).  The event bus feeds the /events SSE endpoint.
        self.spans = (
            spans if spans is not None else obs_spans.SpanCollector(enabled=True)
        )
        self.events = EventBus()
        self.lock = threading.RLock()
        self._progress: Dict[str, SweepProgress] = {}
        self._sweep_spans: Dict[str, obs_spans.Span] = {}
        self._lease_traces: Dict[str, Optional[Dict[str, str]]] = {}
        self._sweeps = self.registry.counter(
            "repro_fabric_sweeps_total", "Sweep submissions accepted."
        )
        self._jobs = self.registry.counter(
            "repro_fabric_jobs_total",
            "Fabric job resolutions, by worker and outcome "
            "(executed, store, deduped, error, duplicate).",
            ("worker", "outcome"),
        )
        self._lease_events = self.registry.counter(
            "repro_fabric_lease_events_total",
            "Lease life-cycle events (granted, renewed, expired).",
            ("event",),
        )
        self._job_seconds = self.registry.histogram(
            "repro_fabric_job_seconds",
            "Per-job execution wall time reported by workers.",
            ("worker",),
        )

    # -- API ------------------------------------------------------------
    def submit(self, document: object) -> Dict[str, object]:
        """Accept one ``sweep_request``; expand, dedupe, queue."""
        t0 = time.time()
        jobs, priority = protocol.parse_sweep_request(document)
        submitter_ctx = protocol.trace_context(document)
        with self.lock:
            entries = []
            for job in jobs:
                job, key, spec, _config = sweep.prepare(job)
                found, _source = sweep.lookup(key, spec, self.store)
                entries.append((store.job_key(spec), job, spec, found is not None))
            record = self.state.submit(entries, priority=priority)
            progress = SweepProgress(
                total=len(record.keys), workers=len(self.state.workers) or 1
            )
            for _ in range(record.deduped):
                progress.job_done("store")
            if record.deduped == len(record.keys):
                progress.finish()
            self._progress[record.id] = progress
            # One root span per sweep, parented under the submitter's
            # context when it sent one; stays open until the last job
            # lands (finished in _advance_progress).
            root = self.spans.span(
                "fabric.sweep", parent=submitter_ctx, sweep=record.id,
                total=len(record.keys), deduped=record.deduped,
            )
            self.spans.add(
                "fabric.submit", t0, time.time() - t0,
                parent=root if root.enabled else None,
                sweep=record.id, jobs=len(record.keys),
            )
            if record.deduped == len(record.keys):
                root.finish()
            elif root.enabled:
                self._sweep_spans[record.id] = root
        self._sweeps.inc()
        self.events.publish("sweep", {
            "sweep": record.id,
            "total": len(record.keys),
            "deduped": record.deduped,
            "queued": len(record.keys) - record.deduped,
        })
        if record.deduped:
            self._jobs.inc(record.deduped, worker="coordinator",
                           outcome="deduped")
        queued = len(record.keys) - record.deduped
        _log.info("accepted %s: %d job(s), %d deduped, %d queued",
                  record.id, len(record.keys), record.deduped, queued)
        return protocol.envelope(
            "sweep_accepted",
            sweep=record.id,
            total=len(record.keys),
            deduped=record.deduped,
            queued=queued,
        )

    def lease(self, document: object) -> Dict[str, object]:
        """Grant a batch to a worker (empty grant when queue is dry)."""
        t0 = time.time()
        worker, capacity = protocol.parse_lease_request(document)
        with self.lock:
            self._expire_locked()
            lease = self.state.lease(worker, capacity)
            if lease is None:
                return protocol.lease_grant(
                    None, [], self.state.lease_seconds
                )
            entries = [(key, self.state.jobs[key].job,
                        self.state.jobs[key].sweeps)
                       for key in lease.keys]
            # The lease span lives in the trace of the first leased
            # job's sweep; every job in the batch executes under it, so
            # submit -> lease -> execute -> report stitches into one
            # tree (a rare mixed-sweep batch shares the first trace).
            sweep_ctx = None
            for _key, _job, sweep_ids in entries:
                sweep_ctx = self._sweep_ctx_locked(sweep_ids)
                if sweep_ctx is not None:
                    break
            lease_doc = self.spans.add(
                "fabric.lease", t0, time.time() - t0, parent=sweep_ctx,
                worker=worker, lease=lease.id, jobs=len(entries),
            )
            lease_ctx = (
                {"trace": lease_doc["trace"], "span": lease_doc["span"]}
                if lease_doc is not None and sweep_ctx is not None
                else None
            )
            self._lease_traces[lease.id] = lease_ctx
            jobs = [(key, job, lease_ctx) for key, job, _sweeps in entries]
        self._lease_events.inc(event="granted")
        _log.debug("granted %s to %s: %d job(s)",
                   lease.id, worker, len(jobs))
        return protocol.lease_grant(lease.id, jobs, self.state.lease_seconds,
                                    trace=lease_ctx)

    def _sweep_ctx_locked(
        self, sweep_ids: List[str]
    ) -> Optional[Dict[str, str]]:
        """The span context of the first still-open sweep root, if any."""
        for sweep_id in sweep_ids:
            span = self._sweep_spans.get(sweep_id)
            if span is not None:
                return span.context()
        return None

    def heartbeat(self, document: object) -> Dict[str, object]:
        worker, lease_id = protocol.parse_heartbeat(document)
        with self.lock:
            alive = self.state.renew(lease_id, worker)
        if alive:
            self._lease_events.inc(event="renewed")
        return protocol.envelope("heartbeat_ack", lease=lease_id, alive=alive)

    def complete(self, document: object) -> Dict[str, object]:
        """Ingest one batch of results; persist before acknowledging."""
        t0 = time.time()
        worker, lease_id, items, metrics, worker_spans = (
            protocol.parse_complete_report(document)
        )
        accepted = duplicates = errors = 0
        for item in items:
            key = item["key"]
            if item["error"] is not None:
                with self.lock:
                    verdict = self.state.fail(key, worker, item["error"])
                errors += 1
                self._jobs.inc(worker=worker, outcome="error")
                _log.warning("job %s failed on %s (%s): %s",
                             key, worker, verdict, item["error"])
                continue
            try:
                result = store.decode_result(item["result"])
            except (KeyError, TypeError, ValueError) as exc:
                raise protocol.ProtocolError(
                    f"undecodable result for job {key}: {exc}"
                ) from None
            with self.lock:
                entry = self.state.jobs.get(key)
                if entry is None:
                    duplicates += 1
                    self._jobs.inc(worker=worker, outcome="unknown")
                    continue
                # Persist first: state is rebuilt from the store after a
                # coordinator restart, so the store must never lag it.
                self.store.put(entry.spec, result)
                runner.seed_cache(
                    runner.cache_key(
                        entry.job.benchmark, entry.job.config_name,
                        entry.job.accesses, entry.job.seed, entry.job.threads,
                        entry.job.scheduler, entry.job.mutate_key,
                        fidelity=entry.job.fidelity,
                    ),
                    result,
                )
                verdict = self.state.complete(key, worker)
                if verdict == "first":
                    accepted += 1
                    outcome = item.get("outcome") or "executed"
                    self._jobs.inc(
                        worker=worker,
                        outcome="store" if outcome == "store" else "executed",
                    )
                    seconds = item.get("seconds")
                    if isinstance(seconds, (int, float)):
                        self._job_seconds.observe(float(seconds), worker=worker)
                    self._advance_progress(entry.sweeps, outcome, seconds)
                else:
                    duplicates += 1
                    self._jobs.inc(worker=worker, outcome="duplicate")
        if metrics:
            self._fold_worker_metrics(worker, metrics)
        if worker_spans:
            self.spans.ingest(worker_spans)
        lease_ctx = (
            self._lease_traces.pop(lease_id, None)
            if lease_id is not None else None
        )
        self.spans.add(
            "fabric.report", t0, time.time() - t0, parent=lease_ctx,
            worker=worker, accepted=accepted, duplicates=duplicates,
            errors=errors,
        )
        self.events.publish("progress", self._progress_event())
        return protocol.envelope(
            "complete_ack",
            accepted=accepted,
            duplicates=duplicates,
            errors=errors,
        )

    def _progress_event(self) -> Dict[str, object]:
        """The merged fleet snapshot, pre-rendered for SSE consumers."""
        snapshot = self.fleet_progress()
        snapshot["line"] = render_line(snapshot)
        return snapshot

    def _advance_progress(
        self, sweep_ids: List[str], outcome: str, seconds
    ) -> None:
        """Tick every sweep a finished job belongs to (dedupe overlap)."""
        for sweep_id in sweep_ids:
            progress = self._progress.get(sweep_id)
            if progress is None:
                continue
            progress.job_done(
                "store" if outcome == "store" else "fabric",
                seconds if isinstance(seconds, (int, float)) else None,
            )
            record = self.state.sweeps.get(sweep_id)
            if record is not None and self.state.counts(record.keys)[DONE] == len(
                record.keys
            ):
                progress.finish()
                root = self._sweep_spans.pop(sweep_id, None)
                if root is not None:
                    root.finish()

    def _fold_worker_metrics(
        self, worker: str, metrics: Dict[str, float]
    ) -> None:
        """Aggregate a worker-side metrics delta into the fleet registry."""
        counter = self.registry.counter(
            "repro_fabric_worker_metric_total",
            "Worker-reported metric deltas, labelled by worker and name.",
            ("worker", "metric"),
        )
        for name, value in sorted(metrics.items()):
            counter.inc(value, worker=worker, metric=name)

    def _expire_locked(self) -> None:
        requeued = self.state.expire_leases()
        if requeued:
            self._lease_events.inc(len(requeued), event="expired")
            _log.warning("%d job(s) re-queued from expired lease(s)",
                         len(requeued))
            # Drop trace contexts of leases the expiry reaped so the
            # map stays bounded by the live-lease count.
            live = set(self.state.leases)
            self._lease_traces = {
                lease_id: ctx
                for lease_id, ctx in self._lease_traces.items()
                if lease_id in live
            }

    # -- views ----------------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self.lock:
            self._expire_locked()
            return {
                "jobs": self.state.counts(),
                "sweeps": {
                    sweep_id: self.state.sweep_status(sweep_id)
                    for sweep_id in self.state.sweeps
                },
                "workers": self.state.workers_view(),
                "queue_depth": self.state.counts()["queued"],
            }

    def sweep_status(
        self, sweep_id: str, include_results: bool = False
    ) -> Optional[Dict[str, object]]:
        with self.lock:
            self._expire_locked()
            status = self.state.sweep_status(sweep_id)
            if status is None:
                return None
            progress = self._progress.get(sweep_id)
            if progress is not None:
                status["progress"] = progress.snapshot()
            if include_results:
                status["results"] = self._results_locked(sweep_id)
        return status

    def _results_locked(self, sweep_id: str) -> List[Dict[str, object]]:
        """Per-job rows for a sweep, with stored payloads where done."""
        record = self.state.sweeps[sweep_id]
        rows: List[Dict[str, object]] = []
        for key in record.keys:
            entry = self.state.jobs[key]
            row: Dict[str, object] = {
                "key": key,
                "benchmark": entry.job.benchmark,
                "config": entry.job.config_name,
                "status": entry.status,
                "error": entry.error,
            }
            if entry.status == DONE:
                result = self.store.get(entry.spec)
                row["result"] = (
                    store.encode_result(result) if result is not None else None
                )
            rows.append(row)
        return rows

    def fleet_progress(self) -> Dict[str, object]:
        """All active sweeps merged into one snapshot (``/progress``)."""
        with self.lock:
            snapshots = [p.snapshot() for p in self._progress.values()]
        return merge_snapshots(snapshots)


class _FleetProgress:
    """Adapter giving :class:`ObsServer` a ``snapshot()`` over the fleet."""

    def __init__(self, coordinator: Coordinator) -> None:
        self._coordinator = coordinator

    def snapshot(self) -> Dict[str, object]:
        return self._coordinator.fleet_progress()


class CoordinatorServer(ObsServer):
    """HTTP front end: obs endpoints + the ``/v1`` submission API."""

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(
            registry=coordinator.registry,
            progress=_FleetProgress(coordinator),
            host=host,
            port=port,
            spans=coordinator.spans,
            events=coordinator.events,
        )
        self.coordinator = coordinator

    def health_extra(self) -> Dict[str, object]:
        status = self.coordinator.status()
        return {
            "role": "fabric-coordinator",
            "workers": status["workers"],
            "jobs": status["jobs"],
            "sweeps": len(status["sweeps"]),
        }

    # -- routing --------------------------------------------------------
    _POST_ROUTES = {
        "/v1/sweeps": "submit",
        "/v1/lease": "lease",
        "/v1/complete": "complete",
        "/v1/heartbeat": "heartbeat",
    }

    def _handle_post(
        self, handler: BaseHTTPRequestHandler, path: str
    ) -> bool:
        method = self._POST_ROUTES.get(path)
        if method is None:
            return False
        try:
            document = self._read_json(handler)
            reply = getattr(self.coordinator, method)(document)
        except protocol.ProtocolError as exc:
            self._respond_json(handler, 400, {"error": str(exc)})
            return True
        self._respond_json(handler, 200, reply)
        return True

    def _handle_get(self, handler: BaseHTTPRequestHandler, path: str) -> bool:
        if path == "/v1/status":
            self._respond_json(handler, 200, self.coordinator.status())
            return True
        if path.startswith("/v1/sweeps/"):
            sweep_id = path[len("/v1/sweeps/"):]
            query = urllib.parse.urlparse(handler.path).query
            include_results = (
                urllib.parse.parse_qs(query).get("results", ["0"])[0]
                not in ("0", "", "false")
            )
            status = self.coordinator.sweep_status(
                sweep_id, include_results=include_results
            )
            if status is None:
                self._respond_json(
                    handler, 404, {"error": f"unknown sweep {sweep_id}"}
                )
            else:
                self._respond_json(handler, 200, status)
            return True
        return False

    @staticmethod
    def _read_json(handler: BaseHTTPRequestHandler) -> object:
        try:
            length = int(handler.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        raw = handler.rfile.read(length) if length > 0 else b""
        if not raw:
            raise protocol.ProtocolError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise protocol.ProtocolError(f"request body is not JSON: {exc}")


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    lease_seconds: float = 60.0,
    max_attempts: int = 3,
) -> Tuple[Coordinator, CoordinatorServer]:
    """Build a coordinator + server pair bound to ``host:port``."""
    coordinator = Coordinator(
        lease_seconds=lease_seconds, max_attempts=max_attempts
    )
    server = CoordinatorServer(coordinator, host=host, port=port)
    return coordinator, server
