"""repro.fabric — distributed sweep coordinator and worker agents.

The paper's result grids are embarrassingly parallel, but the local
sweep engine (:mod:`repro.experiments.sweep`) is bounded by one host's
process pool.  This package scales the same job model across hosts:

* :mod:`repro.fabric.coordinator` — a long-lived HTTP daemon that
  accepts grid submissions (``POST /v1/sweeps``), expands them with the
  sweep engine's own :func:`~repro.experiments.sweep.expand_grid`,
  dedupes against the content-addressed result store, and hands the
  rest out as leases (``POST /v1/lease`` / ``/v1/complete`` /
  ``/v1/heartbeat``) that expire and re-queue on worker death;
* :mod:`repro.fabric.agent` — the worker loop wrapping the same
  :func:`~repro.experiments.runner.simulate_job` path local sweeps run,
  with heartbeats, graceful drain on SIGTERM, and backoff while the
  coordinator is unreachable;
* :mod:`repro.fabric.protocol` — the versioned JSON wire types, built
  on the store's lossless result codec and SHA-256 job keys so a result
  computed anywhere lands in any store shard under the same key;
* :mod:`repro.fabric.state` — the coordinator's pure bookkeeping
  (priority queue, leases, sweep life-cycles) with an injectable clock;
* :mod:`repro.fabric.client` — the submit/watch/fetch API behind the
  ``repro fabric`` CLI family.

Everything is standard library only.  See docs/fabric.md.
"""

from repro.fabric.agent import WorkerAgent
from repro.fabric.client import CoordinatorUnavailable, FabricClient
from repro.fabric.coordinator import Coordinator, CoordinatorServer
from repro.fabric.protocol import PROTOCOL_VERSION, ProtocolError
from repro.fabric.state import CoordinatorState

__all__ = [
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorState",
    "CoordinatorUnavailable",
    "FabricClient",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WorkerAgent",
]
