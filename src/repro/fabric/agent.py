"""The fabric worker agent: lease, simulate, report, repeat.

:class:`WorkerAgent` wraps the exact execution path a local sweep uses
— :func:`repro.experiments.sweep.prepare` for identity,
:func:`repro.experiments.sweep.lookup` for the local cache/store
read-through, :func:`repro.experiments.sweep.compute_job` to actually
simulate (dispatching exact jobs to the cycle-accurate simulator and
fast jobs to :mod:`repro.fastsim`) — so a result computed by a fabric
worker is field-for-field the result a serial ``run_suite`` would
produce, stored under the same SHA-256 key.

Robustness:

* **heartbeats** — while a batch executes, a daemon thread renews the
  lease every ``lease_seconds / 3``, so long jobs on live workers never
  expire; a killed worker stops heartbeating and its lease re-queues;
* **graceful drain** — SIGTERM/SIGINT (or :meth:`request_drain`)
  finishes the current batch, reports it, and exits instead of
  abandoning leased work;
* **retry/backoff** — while the coordinator is unreachable the agent
  sleeps with exponential backoff (capped) and retries; a computed
  batch is retried a few times before being dropped (the results are
  already in the worker's local store, so the re-queued jobs resolve as
  instant store hits on the next lease);
* **key verification** — a job whose locally-derived store key differs
  from the leased key is reported as an error (code-version skew), not
  executed under a wrong identity.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
from time import perf_counter
from time import time as _wall_time
from typing import Dict, List, Mapping, Optional

from repro.experiments import runner, store, sweep
from repro.fabric.client import CoordinatorUnavailable, FabricClient
from repro.fabric.protocol import ProtocolError
from repro.obs import spans as obs_spans

_log = logging.getLogger("repro.fabric.agent")


class WorkerAgent:
    """One worker process's lease-execute-report loop."""

    def __init__(
        self,
        coordinator_url: str,
        worker_id: Optional[str] = None,
        capacity: int = 2,
        poll_seconds: float = 1.0,
        backoff_max_seconds: float = 30.0,
        drain_idle_seconds: Optional[float] = None,
        client: Optional[FabricClient] = None,
        result_store: Optional[store.ResultStore] = None,
    ) -> None:
        self.client = client if client is not None else FabricClient(coordinator_url)
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        self.capacity = max(1, capacity)
        self.poll_seconds = poll_seconds
        self.backoff_max_seconds = backoff_max_seconds
        #: Exit after this long with an empty queue (None = run forever).
        self.drain_idle_seconds = drain_idle_seconds
        self.store = result_store if result_store is not None else (
            store.get_store() if store.store_enabled() else None
        )
        self._stop = threading.Event()
        self.totals: Dict[str, int] = {
            "executed": 0, "store": 0, "errors": 0, "batches": 0,
            "dropped_batches": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def request_drain(self) -> None:
        """Finish the current batch, then exit the run loop."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (main thread only)."""
        def _drain(signum, frame):
            _log.info("worker %s draining on signal %d",
                      self.worker_id, signum)
            self.request_drain()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    # -- main loop ------------------------------------------------------
    def run(self) -> Dict[str, int]:
        """Lease and execute batches until drained; returns totals."""
        _log.info("worker %s serving %s (capacity %d)",
                  self.worker_id, self.client.url, self.capacity)
        backoff = self.poll_seconds
        idle_elapsed = 0.0
        while not self._stop.is_set():
            try:
                lease_id, jobs, lease_seconds = self.client.lease(
                    self.worker_id, self.capacity
                )
            except CoordinatorUnavailable as exc:
                _log.warning("coordinator unreachable (%s); retrying in %.1fs",
                             exc, backoff)
                if self._stop.wait(backoff):
                    break
                backoff = min(backoff * 2, self.backoff_max_seconds)
                continue
            except ProtocolError:
                _log.exception("protocol error talking to the coordinator; "
                               "worker cannot proceed")
                raise
            backoff = self.poll_seconds
            if not jobs:
                if (
                    self.drain_idle_seconds is not None
                    and idle_elapsed >= self.drain_idle_seconds
                ):
                    _log.info("worker %s idle for %.1fs; draining",
                              self.worker_id, idle_elapsed)
                    break
                if self._stop.wait(self.poll_seconds):
                    break
                idle_elapsed += self.poll_seconds
                continue
            idle_elapsed = 0.0
            self._run_batch(lease_id, jobs, lease_seconds)
        _log.info("worker %s drained: %s", self.worker_id, self.totals)
        return dict(self.totals)

    # -- batch execution ------------------------------------------------
    def _run_batch(self, lease_id, jobs, lease_seconds) -> None:
        """Execute one leased batch under a heartbeat, then report it."""
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, lease_seconds, stop_heartbeat),
            name=f"fabric-heartbeat-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        items: List[Dict[str, object]] = []
        batch_spans: List[Dict[str, object]] = []
        try:
            for key, job, ctx in jobs:
                items.append(self._execute(key, job, ctx, batch_spans))
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=5)
        self.totals["batches"] += 1
        self._report(lease_id, items, batch_spans)

    def _execute(
        self,
        key: str,
        job: sweep.Job,
        ctx: Optional[Mapping[str, str]] = None,
        batch_spans: Optional[List[Dict[str, object]]] = None,
    ) -> Dict[str, object]:
        """One job: verify identity, read through, simulate if needed.

        When the lease carries a trace context (``ctx``), each executed
        job appends a finished ``fabric.execute`` span to
        ``batch_spans`` — parented under the coordinator's lease span —
        for the completion report to ship home.
        """
        start_wall = _wall_time()
        try:
            job, cache_key, spec, config = sweep.prepare(job)
            local_key = store.job_key(spec)
            if local_key != key:
                raise ProtocolError(
                    f"job key mismatch: leased {key}, derived {local_key} "
                    "(worker and coordinator run different code?)"
                )
            found, source = sweep.lookup(cache_key, spec, self.store)
            if found is not None:
                self.totals["store"] += 1
                return {
                    "key": key,
                    "result": store.encode_result(found),
                    "outcome": "store",
                    "seconds": None,
                    "error": None,
                }
            t0 = perf_counter()
            result = sweep.compute_job(
                config, job.benchmark, job.accesses, job.seed, job.threads,
                job.fidelity,
            )
            seconds = perf_counter() - t0
            runner.seed_cache(cache_key, result)
            if self.store is not None:
                self.store.put(spec, result)
            self.totals["executed"] += 1
            if ctx is not None and batch_spans is not None:
                batch_spans.append(obs_spans.make_span(
                    "fabric.execute", start_wall, seconds, ctx["trace"],
                    parent_id=ctx["span"],
                    attributes={
                        "worker": self.worker_id,
                        "benchmark": job.benchmark,
                        "config": job.config_name,
                        "outcome": "executed",
                    },
                ))
            return {
                "key": key,
                "result": store.encode_result(result),
                "outcome": "executed",
                "seconds": seconds,
                "error": None,
            }
        except Exception as exc:  # report, don't die: the batch goes on
            _log.warning("job %s failed on this worker: %s", key, exc)
            self.totals["errors"] += 1
            return {
                "key": key,
                "result": None,
                "outcome": "error",
                "seconds": None,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def _report(self, lease_id, items, batch_spans=None) -> None:
        """Ship one batch's results; bounded retries on outages."""
        metrics = {
            "jobs_executed": float(
                sum(1 for item in items if item["outcome"] == "executed")
            ),
            "jobs_from_store": float(
                sum(1 for item in items if item["outcome"] == "store")
            ),
            "jobs_failed": float(
                sum(1 for item in items if item["error"] is not None)
            ),
            "exec_seconds": sum(
                item["seconds"] for item in items
                if isinstance(item["seconds"], (int, float))
            ),
        }
        delay = self.poll_seconds
        for attempt in range(5):
            try:
                self.client.complete(
                    self.worker_id, lease_id, items, metrics=metrics,
                    spans=batch_spans,
                )
                return
            except CoordinatorUnavailable as exc:
                _log.warning(
                    "could not report batch (attempt %d/5): %s",
                    attempt + 1, exc,
                )
                if self._stop.wait(delay):
                    break
                delay = min(delay * 2, self.backoff_max_seconds)
        # The lease will expire and the jobs re-queue; our local store
        # already holds the results, so the redo is a store hit.
        self.totals["dropped_batches"] += 1
        _log.error("dropping batch report after repeated failures; "
                   "jobs will re-queue via lease expiry")

    def _heartbeat_loop(
        self, lease_id: str, lease_seconds: float, stop: threading.Event
    ) -> None:
        interval = max(0.05, lease_seconds / 3.0)
        while not stop.wait(interval):
            try:
                alive = self.client.heartbeat(self.worker_id, lease_id)
                if not alive:
                    _log.warning("lease %s no longer honoured by the "
                                 "coordinator", lease_id)
            except (CoordinatorUnavailable, ProtocolError) as exc:
                _log.debug("heartbeat for %s failed: %s", lease_id, exc)
