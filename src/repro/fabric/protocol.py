"""Versioned JSON wire protocol between coordinator, workers, clients.

Every message is a JSON object carrying ``{"protocol": N, "kind": K}``;
:func:`check_envelope` rejects version or kind mismatches up front, so
a skewed peer fails loudly instead of corrupting the queue.

Job identity is *not* negotiated over the wire: both sides derive it
independently.  A job travels as its five resolved fields (benchmark,
config, accesses, seed, threads, scheduler); each side runs it through
:func:`repro.experiments.sweep.prepare`, which rebuilds the
:class:`~repro.common.config.SystemConfig` from the named preset and
fingerprints it into the store spec.  The SHA-256
:func:`repro.experiments.store.job_key` over that spec is therefore
identical on every host running the same code — a worker detecting a
key mismatch against its lease is detecting *code* skew, and reports an
error instead of storing a result under a wrong identity.  Results ride
the store's lossless codec (:func:`~repro.experiments.store.
encode_result`), so a payload computed remotely decodes field-for-field
equal to a local run.

Messages (all ``POST`` bodies/responses; see docs/fabric.md):

* ``sweep_request`` / ``sweep_accepted`` — submit a grid (or explicit
  job list); answer with sweep id + dedupe counts.
* ``lease_request`` / ``lease_grant``    — claim up to ``capacity``
  queued jobs under one expiring lease.
* ``complete_report`` / ``complete_ack`` — return executed results
  (or per-job errors) plus a worker-side metrics delta.
* ``heartbeat`` / ``heartbeat_ack``      — extend a lease while a
  batch is still executing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments import sweep
from repro.fastsim.version import JOB_FIDELITIES
from repro.obs import spans as obs_spans

#: Bumped on any incompatible wire change; both sides refuse mismatches.
#: 2: jobs carry a ``fidelity`` tier ("exact" or "fast") — version-1
#: peers would reject the field, and silently dropping it would execute
#: fast jobs at the wrong tier, so the change is incompatible.
#: 3: distributed span tracing — submissions and lease grants carry a
#: ``trace`` context, lease-grant job entries carry their parenting
#: context, and completion reports ship the worker's finished spans.
#: Dropping these on one side would silently produce severed traces, so
#: the change is incompatible.
PROTOCOL_VERSION = 3

#: Job fields as they appear on the wire (store-spec naming).
_JOB_WIRE_FIELDS = ("benchmark", "config", "accesses", "seed", "threads",
                    "scheduler", "fidelity")


class ProtocolError(ValueError):
    """A message that violates the wire protocol (version, shape, type)."""


def envelope(kind: str, **fields: object) -> Dict[str, object]:
    """A new message of ``kind`` with the version stamp applied."""
    message: Dict[str, object] = {"protocol": PROTOCOL_VERSION, "kind": kind}
    message.update(fields)
    return message


def check_envelope(
    document: object, kind: str
) -> Mapping[str, object]:
    """Validate the version stamp and kind; returns the document."""
    if not isinstance(document, Mapping):
        raise ProtocolError(
            f"expected a JSON object, got {type(document).__name__}"
        )
    version = document.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, this "
            f"build speaks {PROTOCOL_VERSION}"
        )
    if document.get("kind") != kind:
        raise ProtocolError(
            f"expected message kind {kind!r}, got {document.get('kind')!r}"
        )
    return document


def _require(document: Mapping[str, object], field: str, types, kind: str):
    value = document.get(field)
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            f"{kind}.{field} must be {getattr(types, '__name__', types)}, "
            f"got {value!r}"
        )
    return value


def trace_context(
    document: Mapping[str, object], where: str = "trace"
) -> Optional[Dict[str, str]]:
    """The validated span context under a message's ``trace`` field.

    Returns ``{"trace", "span"}`` or None (untraced peers send null);
    a malformed context is a protocol violation, not a span error.
    """
    try:
        return obs_spans.check_context(document.get("trace"), where)
    except obs_spans.SpanError as exc:
        raise ProtocolError(str(exc)) from None


# -- jobs ---------------------------------------------------------------
def encode_job(job: sweep.Job) -> Dict[str, object]:
    """Wire form of one *resolved* job (store-spec field names)."""
    if job.accesses is None or job.seed is None:
        raise ProtocolError(
            "jobs must be resolved (accesses and seed filled in) before "
            "they go on the wire — env-backed defaults differ per host"
        )
    return {
        "benchmark": job.benchmark,
        "config": job.config_name,
        "accesses": job.accesses,
        "seed": job.seed,
        "threads": job.threads,
        "scheduler": job.scheduler,
        "fidelity": job.fidelity,
    }


def decode_job(payload: object) -> sweep.Job:
    """Inverse of :func:`encode_job`, with field validation.

    ``fidelity`` is optional on the way in (defaulting to "exact") but
    must name a per-job tier — the "auto" *sweep* policy is lowered to
    explicit fast + exact jobs before anything goes on the wire.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"job must be a JSON object, got {payload!r}")
    unknown = set(payload) - set(_JOB_WIRE_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown job fields: {sorted(unknown)}")
    fidelity = payload.get("fidelity", "exact")
    if fidelity not in JOB_FIDELITIES:
        raise ProtocolError(
            f"job.fidelity must be one of {JOB_FIDELITIES}, got {fidelity!r}"
        )
    return sweep.Job(
        benchmark=_require(payload, "benchmark", str, "job"),
        config_name=_require(payload, "config", str, "job"),
        accesses=_require(payload, "accesses", int, "job"),
        seed=_require(payload, "seed", int, "job"),
        threads=_require(payload, "threads", int, "job"),
        scheduler=_require(payload, "scheduler", str, "job"),
        fidelity=fidelity,
    )


# -- sweep submission ---------------------------------------------------
def sweep_request(
    benchmarks: Sequence[str],
    configs: Sequence[str],
    accesses: Optional[int] = None,
    seed: Optional[int] = None,
    threads: int = 1,
    scheduler: str = "ahb",
    priority: int = 0,
    fidelity: str = "exact",
    trace: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """A grid submission: benchmarks x configs, local-sweep semantics.

    ``fidelity`` is the per-job tier applied to every grid cell; sweeps
    that mix tiers (the fast tier's validation sample) submit an
    explicit job list via :func:`sweep_request_jobs` instead.
    ``trace`` is the submitter's span context; the coordinator parents
    the whole sweep's trace under it when present.
    """
    return envelope(
        "sweep_request",
        benchmarks=list(benchmarks),
        configs=list(configs),
        accesses=accesses,
        seed=seed,
        threads=threads,
        scheduler=scheduler,
        priority=priority,
        fidelity=fidelity,
        trace=dict(trace) if trace is not None else None,
    )


def sweep_request_jobs(
    jobs: Sequence[sweep.Job],
    priority: int = 0,
    trace: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """An explicit-jobs submission (mixed-tier sweeps use this form)."""
    return envelope(
        "sweep_request",
        jobs=[encode_job(job) for job in jobs],
        priority=priority,
        trace=dict(trace) if trace is not None else None,
    )


def parse_sweep_request(
    document: object,
) -> Tuple[List[sweep.Job], int]:
    """Expand a submission into (unresolved) jobs plus its priority.

    Accepts either the grid form (``benchmarks`` x ``configs``) or an
    explicit ``jobs`` list of wire-form job objects.  Grid expansion is
    the sweep engine's own :func:`~repro.experiments.sweep.expand_grid`,
    so a fabric sweep covers exactly the cells a local ``run_suite``
    would.
    """
    document = check_envelope(document, "sweep_request")
    priority = document.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an int, got {priority!r}")
    if document.get("jobs") is not None:
        jobs_field = document["jobs"]
        if not isinstance(jobs_field, Sequence) or isinstance(jobs_field, str):
            raise ProtocolError("sweep_request.jobs must be a list")
        jobs = [decode_job(item) for item in jobs_field]
    else:
        benchmarks = document.get("benchmarks")
        configs = document.get("configs")
        for name, value in (("benchmarks", benchmarks), ("configs", configs)):
            if (
                not isinstance(value, Sequence)
                or isinstance(value, str)
                or not value
                or not all(isinstance(item, str) for item in value)
            ):
                raise ProtocolError(
                    f"sweep_request.{name} must be a non-empty list of "
                    f"strings, got {value!r}"
                )
        for name in ("accesses", "seed"):
            value = document.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"sweep_request.{name} must be an int or null, got "
                    f"{value!r}"
                )
        fidelity = document.get("fidelity", "exact")
        if fidelity not in JOB_FIDELITIES:
            raise ProtocolError(
                f"sweep_request.fidelity must be one of {JOB_FIDELITIES}, "
                f"got {fidelity!r} (the \"auto\" policy is lowered to "
                "explicit jobs before submission)"
            )
        jobs = sweep.expand_grid(
            benchmarks,
            configs,
            accesses=document.get("accesses"),
            seed=document.get("seed"),
            threads=document.get("threads", 1),
            scheduler=document.get("scheduler", "ahb"),
            fidelity=fidelity,
        )
    if not jobs:
        raise ProtocolError("sweep_request expands to zero jobs")
    return jobs, priority


# -- leasing ------------------------------------------------------------
def lease_request(worker: str, capacity: int) -> Dict[str, object]:
    """A worker's claim for up to ``capacity`` queued jobs."""
    return envelope("lease_request", worker=worker, capacity=capacity)


def parse_lease_request(document: object) -> Tuple[str, int]:
    """Validate a lease request; returns ``(worker, capacity)``."""
    document = check_envelope(document, "lease_request")
    worker = _require(document, "worker", str, "lease_request")
    capacity = _require(document, "capacity", int, "lease_request")
    if capacity < 1:
        raise ProtocolError(f"lease capacity must be >= 1, got {capacity}")
    return worker, capacity


def lease_grant(
    lease_id: Optional[str],
    jobs: Sequence[Tuple[str, sweep.Job, Optional[Mapping[str, str]]]],
    lease_seconds: float,
    trace: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """``lease_id`` None (with no jobs) means "nothing queued right now".

    Each job entry is ``(key, job, trace context)``; the context (when
    tracing is live) parents the worker's ``fabric.execute`` span under
    the coordinator's sweep trace.  ``trace`` is the context of the
    lease itself.
    """
    return envelope(
        "lease_grant",
        lease=lease_id,
        lease_seconds=lease_seconds,
        jobs=[
            {
                "key": key,
                "job": encode_job(job),
                "trace": dict(ctx) if ctx is not None else None,
            }
            for key, job, ctx in jobs
        ],
        trace=dict(trace) if trace is not None else None,
    )


def parse_lease_grant(
    document: object,
) -> Tuple[
    Optional[str],
    List[Tuple[str, sweep.Job, Optional[Dict[str, str]]]],
    float,
]:
    """Inverse of :func:`lease_grant`: ``(lease id, jobs, seconds)``.

    Jobs come back as ``(key, job, trace context)`` triples; the
    context is None on untraced fleets.
    """
    document = check_envelope(document, "lease_grant")
    lease_id = document.get("lease")
    if lease_id is not None and not isinstance(lease_id, str):
        raise ProtocolError(f"lease id must be a string, got {lease_id!r}")
    jobs_field = document.get("jobs", [])
    if not isinstance(jobs_field, Sequence) or isinstance(jobs_field, str):
        raise ProtocolError("lease_grant.jobs must be a list")
    jobs: List[Tuple[str, sweep.Job, Optional[Dict[str, str]]]] = []
    for item in jobs_field:
        if not isinstance(item, Mapping):
            raise ProtocolError("lease_grant job entry must be an object")
        key = _require(item, "key", str, "lease_grant.jobs")
        jobs.append((
            key,
            decode_job(item.get("job")),
            trace_context(item, "lease_grant.jobs[].trace"),
        ))
    lease_seconds = document.get("lease_seconds", 0.0)
    if not isinstance(lease_seconds, (int, float)) or isinstance(
        lease_seconds, bool
    ):
        raise ProtocolError(
            f"lease_seconds must be a number, got {lease_seconds!r}"
        )
    return lease_id, jobs, float(lease_seconds)


# -- completion ---------------------------------------------------------
def complete_report(
    worker: str,
    lease_id: Optional[str],
    items: Sequence[Mapping[str, object]],
    metrics: Optional[Mapping[str, float]] = None,
    spans: Optional[Sequence[Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Results of one batch: per-job outcome plus a metrics delta.

    Each item is ``{"key": ..., "result": <encoded>|None, "outcome":
    "executed"|"store", "seconds": float|None, "error": str|None}``.
    ``spans`` are the worker's finished encoded spans for this batch
    (empty on untraced fleets), ingested by the coordinator into the
    fleet-wide trace.
    """
    return envelope(
        "complete_report",
        worker=worker,
        lease=lease_id,
        items=[dict(item) for item in items],
        metrics=dict(metrics) if metrics else {},
        spans=[dict(span) for span in spans] if spans else [],
    )


def parse_complete_report(
    document: object,
) -> Tuple[
    str,
    Optional[str],
    List[Dict[str, object]],
    Dict[str, float],
    List[Dict[str, object]],
]:
    """Validate a batch report: ``(worker, lease, items, metrics, spans)``.

    Every item must carry a result or an error; non-numeric metric
    values are dropped rather than rejected.  Every shipped span must
    pass :func:`repro.obs.spans.check_span` — a skewed worker cannot
    poison the coordinator's trace store.
    """
    document = check_envelope(document, "complete_report")
    worker = _require(document, "worker", str, "complete_report")
    lease_id = document.get("lease")
    if lease_id is not None and not isinstance(lease_id, str):
        raise ProtocolError(f"lease id must be a string, got {lease_id!r}")
    items_field = document.get("items")
    if not isinstance(items_field, Sequence) or isinstance(items_field, str):
        raise ProtocolError("complete_report.items must be a list")
    items: List[Dict[str, object]] = []
    for item in items_field:
        if not isinstance(item, Mapping):
            raise ProtocolError("complete_report item must be an object")
        key = _require(item, "key", str, "complete_report.items")
        result = item.get("result")
        error = item.get("error")
        if result is None and error is None:
            raise ProtocolError(
                f"complete_report item {key} carries neither result nor error"
            )
        if result is not None and not isinstance(result, Mapping):
            raise ProtocolError(f"result for {key} must be an object")
        if error is not None and not isinstance(error, str):
            raise ProtocolError(f"error for {key} must be a string")
        items.append(
            {
                "key": key,
                "result": dict(result) if result is not None else None,
                "error": error,
                "outcome": item.get("outcome", "executed"),
                "seconds": item.get("seconds"),
            }
        )
    metrics_field = document.get("metrics", {})
    if not isinstance(metrics_field, Mapping):
        raise ProtocolError("complete_report.metrics must be an object")
    metrics = {
        str(name): float(value) for name, value in metrics_field.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    spans_field = document.get("spans", [])
    if not isinstance(spans_field, Sequence) or isinstance(spans_field, str):
        raise ProtocolError("complete_report.spans must be a list")
    try:
        spans = [obs_spans.check_span(span) for span in spans_field]
    except obs_spans.SpanError as exc:
        raise ProtocolError(f"complete_report.spans: {exc}") from None
    return worker, lease_id, items, metrics, spans


# -- heartbeat ----------------------------------------------------------
def heartbeat(worker: str, lease_id: str) -> Dict[str, object]:
    """A keep-alive extending ``lease_id`` while a batch executes."""
    return envelope("heartbeat", worker=worker, lease=lease_id)


def parse_heartbeat(document: object) -> Tuple[str, str]:
    """Validate a heartbeat; returns ``(worker, lease id)``."""
    document = check_envelope(document, "heartbeat")
    return (
        _require(document, "worker", str, "heartbeat"),
        _require(document, "lease", str, "heartbeat"),
    )
