"""Client API for the fabric coordinator: submit, watch, fetch.

:class:`FabricClient` wraps the coordinator's HTTP API with plain
urllib (no dependencies) and the wire codec from
:mod:`repro.fabric.protocol`.  The worker agent reuses the same
transport for leasing and completion, so every process talks to the
coordinator through one code path.

Error model: a 4xx answer (protocol violation, unknown sweep) raises
:class:`~repro.fabric.protocol.ProtocolError`; anything that looks like
an unreachable or dying coordinator (connection refused, timeouts,
5xx) raises :class:`CoordinatorUnavailable`, which callers treat as
retryable — the agent backs off and retries, ``watch`` keeps polling.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments import store
from repro.fabric import protocol
from repro.obs import spans as obs_spans
from repro.system.results import RunResult


class CoordinatorUnavailable(OSError):
    """The coordinator could not be reached (retryable)."""


def http_json(
    url: str,
    document: Optional[Mapping[str, object]] = None,
    timeout: float = 10.0,
) -> Dict[str, object]:
    """One JSON round-trip: GET when ``document`` is None, else POST."""
    data = (
        None
        if document is None
        else json.dumps(document).encode("utf-8")
    )
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            message = json.loads(body).get("error", body)
        except ValueError:
            message = body
        if 400 <= exc.code < 500:
            raise protocol.ProtocolError(
                f"{url} -> {exc.code}: {message}"
            ) from None
        raise CoordinatorUnavailable(f"{url} -> {exc.code}: {message}") from None
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as exc:
        raise CoordinatorUnavailable(f"{url}: {exc}") from None
    except ValueError as exc:  # non-JSON body
        raise protocol.ProtocolError(f"{url} answered non-JSON: {exc}") from None


class FabricClient:
    """Talk to one coordinator (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _call(
        self, path: str, document: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        return http_json(self.url + path, document, timeout=self.timeout)

    # -- submission / watching -----------------------------------------
    def submit(
        self,
        benchmarks: Sequence[str],
        configs: Sequence[str],
        accesses: Optional[int] = None,
        seed: Optional[int] = None,
        threads: int = 1,
        scheduler: str = "ahb",
        priority: int = 0,
        fidelity: str = "exact",
    ) -> Dict[str, object]:
        """Submit a grid; returns the ``sweep_accepted`` document.

        ``fidelity`` follows docs/fidelity.md: "exact" submits the
        plain grid; "fast" (and "auto", which degrades to it here —
        decision-boundary escalation needs a local orchestrator loop)
        lowers the sweep client-side into fast-tier jobs for every cell
        *plus* the FidelityGate's deterministic exact validation sample,
        so the completed sweep contains everything
        :meth:`fetch_calibrated_suite` needs to attach error bars.

        When the process has a live span collector, the submission
        opens a ``fabric.submit`` span and sends its context with the
        request, so the coordinator's sweep trace parents under the
        submitting client.
        """
        span = obs_spans.default_collector().span(
            "fabric.submit", coordinator=self.url,
        )
        try:
            reply = self._submit(
                benchmarks, configs, accesses, seed, threads, scheduler,
                priority, fidelity, span.context(),
            )
        except Exception:
            span.finish("error")
            raise
        span.finish()
        return reply

    def _submit(
        self, benchmarks, configs, accesses, seed, threads, scheduler,
        priority, fidelity, trace,
    ) -> Dict[str, object]:
        if fidelity == "exact":
            request = protocol.sweep_request(
                benchmarks, configs, accesses=accesses, seed=seed,
                threads=threads, scheduler=scheduler, priority=priority,
                trace=trace,
            )
        else:
            from repro.experiments import sweep as sweep_mod
            from repro.fastsim.gate import FidelityGate

            fast_jobs = [
                job.resolve()
                for job in sweep_mod.expand_grid(
                    benchmarks, configs, accesses=accesses, seed=seed,
                    threads=threads, scheduler=scheduler, fidelity="fast",
                )
            ]
            keys = [
                store.job_key(sweep_mod.prepare(job)[2]) for job in fast_jobs
            ]
            validation = [
                dataclasses.replace(fast_jobs[i], fidelity="exact")
                for i in FidelityGate().select(keys)
            ]
            request = protocol.sweep_request_jobs(
                fast_jobs + validation, priority=priority, trace=trace
            )
        reply = self._call("/v1/sweeps", request)
        protocol.check_envelope(reply, "sweep_accepted")
        return dict(reply)

    def sweep_status(
        self, sweep_id: str, include_results: bool = False
    ) -> Dict[str, object]:
        suffix = "?results=1" if include_results else ""
        return self._call(f"/v1/sweeps/{sweep_id}{suffix}")

    def status(self) -> Dict[str, object]:
        return self._call("/v1/status")

    def health(self) -> Dict[str, object]:
        return self._call("/healthz")

    def progress(self) -> Dict[str, object]:
        return self._call("/progress.json")

    def trace(self) -> Dict[str, object]:
        """The coordinator's span snapshot (``/spans.json``)."""
        return self._call("/spans.json")

    def events(self, timeout: Optional[float] = None):
        """Live SSE stream from ``/events``: yields ``(kind, payload)``.

        Connects to the coordinator's Server-Sent-Events endpoint and
        yields each event as it arrives (keepalive comments are
        skipped).  The generator ends when the server closes the
        stream; connection problems raise
        :class:`CoordinatorUnavailable`.  ``timeout`` bounds the wait
        for each chunk, not the stream's total life.
        """
        request = urllib.request.Request(
            self.url + "/events", headers={"Accept": "text/event-stream"}
        )
        try:
            # Closed by the finally below; the CFG rule cannot see
            # across the second try block.
            response = urllib.request.urlopen(  # lint: resource-ok
                request, timeout=timeout if timeout is not None else self.timeout
            )
        except (urllib.error.URLError, TimeoutError, ConnectionError,
                OSError) as exc:
            raise CoordinatorUnavailable(f"{self.url}/events: {exc}") from None
        try:
            kind = None
            data_lines: List[str] = []
            for raw in response:
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("event:"):
                    kind = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and (kind is not None or data_lines):
                    payload = None
                    if data_lines:
                        try:
                            payload = json.loads("\n".join(data_lines))
                        except ValueError:
                            payload = "\n".join(data_lines)
                    yield (kind or "message", payload)
                    kind = None
                    data_lines = []
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise CoordinatorUnavailable(f"{self.url}/events: {exc}") from None
        finally:
            response.close()

    def watch(
        self,
        sweep_id: str,
        poll_seconds: float = 0.5,
        timeout: Optional[float] = None,
        on_update: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """Poll until the sweep finishes (all jobs done or failed).

        Transient coordinator outages are retried until ``timeout``
        (None = wait forever); raises :class:`TimeoutError` past it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                status = self.sweep_status(sweep_id)
            except CoordinatorUnavailable:
                status = None
            if status is not None:
                if on_update is not None:
                    on_update(status)
                counts = status.get("counts", {})
                settled = counts.get("done", 0) + counts.get("failed", 0)
                if settled >= status.get("total", 0):
                    return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} not finished after {timeout}s"
                )
            time.sleep(poll_seconds)

    def fetch_results(
        self, sweep_id: str
    ) -> List[Tuple[str, str, Optional[RunResult]]]:
        """``(benchmark, config, result)`` per job, submission order.

        Results decode through the store codec — field-for-field what a
        local run would have produced.  Failed jobs yield None.
        """
        status = self.sweep_status(sweep_id, include_results=True)
        rows = []
        for row in status.get("results", []):
            payload = row.get("result")
            rows.append(
                (
                    row["benchmark"],
                    row["config"],
                    store.decode_result(payload) if payload else None,
                )
            )
        return rows

    def fetch_suite(
        self, sweep_id: str
    ) -> Dict[str, Dict[str, RunResult]]:
        """Results shaped like :func:`repro.experiments.runner.run_suite`.

        When a cell resolved at both tiers (a fast sweep's validation
        sample) the exact result wins — later rows of the same cell
        overwrite earlier ones, and validation jobs are submitted after
        the fast grid.
        """
        suite: Dict[str, Dict[str, RunResult]] = {}
        for benchmark, config, result in self.fetch_results(sweep_id):
            if result is not None:
                suite.setdefault(benchmark, {})[config] = result
        return suite

    def fetch_calibrated_suite(
        self, sweep_id: str
    ) -> Tuple[Dict[str, Dict[str, RunResult]], Optional[object]]:
        """A fast sweep's suite with validated error bars attached.

        Splits the sweep's rows by fidelity tier, calibrates a
        :class:`~repro.fastsim.gate.CalibrationRecord` from every
        (fast, exact) pair of the same cell, stamps the record's error
        bars onto all fast results, and returns ``(suite, record)``
        with exact results preferred per cell.  A sweep with no fast
        rows (or no validation pairs) returns ``record=None``.
        """
        from repro.fastsim.gate import FidelityGate

        fast_rows: Dict[Tuple[str, str], RunResult] = {}
        exact_rows: Dict[Tuple[str, str], RunResult] = {}
        for benchmark, config, result in self.fetch_results(sweep_id):
            if result is None:
                continue
            tier = fast_rows if result.fidelity is not None else exact_rows
            tier[(benchmark, config)] = result
        pairs = [
            (fast_rows[cell], exact_rows[cell])
            for cell in sorted(fast_rows)
            if cell in exact_rows
        ]
        record = None
        if pairs:
            record = FidelityGate().calibrate(pairs)
            for result in fast_rows.values():
                FidelityGate.attach(result, record)
        suite: Dict[str, Dict[str, RunResult]] = {}
        for cell, result in list(fast_rows.items()) + list(exact_rows.items()):
            suite.setdefault(cell[0], {})[cell[1]] = result
        return suite, record

    # -- worker transport (used by the agent) --------------------------
    def lease(
        self, worker: str, capacity: int
    ) -> Tuple[Optional[str], List[Tuple[str, object, Optional[Dict[str, str]]]], float]:
        """Claim a batch: ``(lease id, (key, job, trace ctx) triples, seconds)``."""
        reply = self._call(
            "/v1/lease", protocol.lease_request(worker, capacity)
        )
        return protocol.parse_lease_grant(reply)

    def complete(
        self,
        worker: str,
        lease_id: Optional[str],
        items: Sequence[Mapping[str, object]],
        metrics: Optional[Mapping[str, float]] = None,
        spans: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> Dict[str, object]:
        reply = self._call(
            "/v1/complete",
            protocol.complete_report(worker, lease_id, items, metrics,
                                     spans=spans),
        )
        protocol.check_envelope(reply, "complete_ack")
        return dict(reply)

    def heartbeat(self, worker: str, lease_id: str) -> bool:
        reply = self._call(
            "/v1/heartbeat", protocol.heartbeat(worker, lease_id)
        )
        protocol.check_envelope(reply, "heartbeat_ack")
        return bool(reply.get("alive"))
