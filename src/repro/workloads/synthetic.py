"""Synthetic stream-mixture workload generator.

Generates line-granularity traces whose memory-controller-visible
behaviour is controlled directly:

* ``length_dist`` — the distribution of *stream lengths* (a stream is a
  run of consecutive cache lines, exactly the paper's definition);
* ``interleave`` — how many streams are live concurrently, which is
  what the Stream Filter has to untangle (Figure 16's accuracy lever);
* ``hot_fraction`` / ``hot_lines`` — temporal locality: accesses to a
  small hot set that the caches absorb, controlling memory intensity
  together with ``gap_mean``;
* ``descending_fraction`` — streams walking downward in the address
  space;
* ``write_fraction`` — stores, which produce DRAM writes through dirty
  evictions;
* ``phases`` — coarse program phases with different stream mixtures,
  producing the epoch-to-epoch SLH variation of Figure 3.

Cold stream data comes from a bump allocator over a huge footprint, so
streaming lines always miss the cache hierarchy — matching the paper's
memory-intensive workloads whose streams are compulsory-miss traffic.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.trace import Trace

#: Line-address region where the hot (cache-resident) set lives.
HOT_BASE = 1 << 30
#: Start of the cold streaming region.
COLD_BASE = 1 << 34
#: Random spacing added between consecutively allocated stream regions.
REGION_SLACK = 48


@dataclass
class WorkloadPhase:
    """A program phase: a weight and parameter overrides for it."""

    weight: float
    length_dist: Optional[Dict[int, float]] = None
    gap_mean: Optional[float] = None
    hot_fraction: Optional[float] = None


@dataclass
class StreamWorkload:
    """Parameter set for one synthetic benchmark."""

    name: str = "synthetic"
    length_dist: Dict[int, float] = field(default_factory=lambda: {1: 0.3, 2: 0.4, 4: 0.3})
    gap_mean: float = 20.0
    hot_fraction: float = 0.3
    hot_lines: int = 2048
    write_fraction: float = 0.12
    descending_fraction: float = 0.15
    interleave: int = 4
    #: probability that the next cold access continues the same stream as
    #: the previous one (loops sweep one region at a time; higher values
    #: mean burstier, easier-to-track streams at the controller)
    burstiness: float = 0.5
    phases: Sequence[WorkloadPhase] = ()
    #: accesses per full cycle through the phase list; phases alternate
    #: in rounds (so SLH epochs see genuinely different phases over time)
    phase_round: int = 6000

    def validate(self) -> None:
        if not self.length_dist:
            raise ValueError("length_dist must not be empty")
        if any(length < 1 for length in self.length_dist):
            raise ValueError("stream lengths must be >= 1")
        if any(weight < 0 for weight in self.length_dist.values()):
            raise ValueError("length weights must be non-negative")
        if sum(self.length_dist.values()) <= 0:
            raise ValueError("length weights must sum to a positive value")
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0 <= self.descending_fraction <= 1:
            raise ValueError("descending_fraction must be in [0, 1]")
        if not 0 <= self.burstiness <= 1:
            raise ValueError("burstiness must be in [0, 1]")
        if self.interleave < 1:
            raise ValueError("interleave must be >= 1")
        if self.gap_mean < 0:
            raise ValueError("gap_mean must be non-negative")
        if any(phase.weight < 0 for phase in self.phases):
            raise ValueError("phase weights must be non-negative")

    def with_overrides(self, phase: WorkloadPhase) -> "StreamWorkload":
        """This workload with a phase's overrides applied."""
        changes = {}
        if phase.length_dist is not None:
            changes["length_dist"] = phase.length_dist
        if phase.gap_mean is not None:
            changes["gap_mean"] = phase.gap_mean
        if phase.hot_fraction is not None:
            changes["hot_fraction"] = phase.hot_fraction
        return replace(self, phases=(), **changes)


class _Stream:
    __slots__ = ("next", "step", "remaining", "is_write")

    def __init__(
        self, next_line: int, step: int, remaining: int, is_write: bool
    ) -> None:
        self.next = next_line
        self.step = step
        self.remaining = remaining
        self.is_write = is_write


class _Allocator:
    """Bump allocator handing out non-overlapping cold stream regions."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._cursor = COLD_BASE

    def region(self, length: int) -> int:
        base = self._cursor
        self._cursor += length + self._rng.randrange(8, REGION_SLACK)
        return base


def _sample_length(rng: random.Random, dist: Dict[int, float]) -> int:
    lengths = list(dist.keys())
    weights = list(dist.values())
    return rng.choices(lengths, weights=weights, k=1)[0]


def _sample_gap(rng: random.Random, mean: float) -> int:
    if mean <= 0:
        return 0
    return int(-mean * math.log(max(rng.random(), 1e-12)))


def _generate_segment(
    cfg: StreamWorkload,
    count: int,
    rng: random.Random,
    alloc: _Allocator,
    active: List[_Stream],
    records: List[Tuple[int, int, bool]],
) -> None:
    last_stream: Optional[_Stream] = None
    for _ in range(count):
        if rng.random() < cfg.hot_fraction:
            line = HOT_BASE + rng.randrange(cfg.hot_lines)
            is_write = rng.random() < cfg.write_fraction
        else:
            while len(active) < cfg.interleave:
                length = _sample_length(rng, cfg.length_dist)
                descending = rng.random() < cfg.descending_fraction
                # streams are load streams or store streams wholesale:
                # real codes sweep input and output arrays separately, so
                # a store never punches a hole in a read stream at the MC
                writes = rng.random() < cfg.write_fraction
                base = alloc.region(length)
                if descending:
                    active.append(_Stream(base + length - 1, -1, length, writes))
                else:
                    active.append(_Stream(base, 1, length, writes))
            if last_stream in active and rng.random() < cfg.burstiness:
                stream = last_stream
            else:
                stream = active[rng.randrange(len(active))]
            last_stream = stream
            line = stream.next
            stream.next += stream.step
            stream.remaining -= 1
            is_write = stream.is_write
            if stream.remaining == 0:
                active.remove(stream)
        records.append((_sample_gap(rng, cfg.gap_mean), line, is_write))


def generate_trace(
    workload: StreamWorkload, n_accesses: int, seed: int = 0
) -> Trace:
    """Generate a deterministic trace of ``n_accesses`` records.

    With ``workload.phases`` set, the trace is split into contiguous
    segments proportional to the phase weights, each generated with that
    phase's overrides (live streams carry across the boundary, like a
    real phase change mid-loop-nest).
    """
    workload.validate()
    if n_accesses <= 0:
        raise ValueError("n_accesses must be positive")
    # crc32, not hash(): Python string hashing is randomised per process
    # and would silently break cross-process reproducibility
    rng = random.Random(seed ^ zlib.crc32(workload.name.encode()))
    alloc = _Allocator(rng)
    active: List[_Stream] = []
    records: List[Tuple[int, int, bool]] = []

    if workload.phases:
        total_weight = sum(p.weight for p in workload.phases)
        if total_weight <= 0:
            raise ValueError("phase weights must sum to a positive value")
        if workload.phase_round <= 0:
            raise ValueError("phase_round must be positive")
        remaining = n_accesses
        while remaining > 0:
            for phase in workload.phases:
                if phase.weight == 0:
                    # A zero-weight phase is "not present in this mix",
                    # not "present one access per round": the >=1 clamp
                    # below exists so tiny positive weights still appear.
                    continue
                count = int(round(workload.phase_round * phase.weight / total_weight))
                count = min(max(count, 1), remaining)
                _generate_segment(
                    workload.with_overrides(phase), count, rng, alloc, active, records
                )
                remaining -= count
                if remaining <= 0:
                    break
    else:
        _generate_segment(workload, n_accesses, rng, alloc, active, records)

    return Trace(records, name=workload.name)
