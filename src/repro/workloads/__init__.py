"""Workloads: the trace format, the synthetic generator, and profiles.

The paper drives its simulator with execution traces of SPEC2006fp, NAS
class B, and five proprietary IBM commercial workloads.  Those traces
are not available, so this package synthesises line-granularity memory
traces whose *memory-controller-visible* properties — stream-length
mixture, direction mix, interleaving, arrival density, read/write mix —
are controlled per benchmark (see DESIGN.md, substitution table).
"""

from repro.workloads.dynamic import (
    is_dynamic,
    trace_benchmark,
    workload_benchmark,
)
from repro.workloads.profiles import (
    BENCHMARKS,
    FOCUS_BENCHMARKS,
    SUITES,
    BenchmarkProfile,
    get_profile,
    suite_benchmarks,
)
from repro.workloads.synthetic import (
    StreamWorkload,
    WorkloadPhase,
    generate_trace,
)
from repro.workloads.trace import Trace, TraceRecord

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "FOCUS_BENCHMARKS",
    "SUITES",
    "StreamWorkload",
    "Trace",
    "TraceRecord",
    "WorkloadPhase",
    "generate_trace",
    "get_profile",
    "is_dynamic",
    "suite_benchmarks",
    "trace_benchmark",
    "workload_benchmark",
]
