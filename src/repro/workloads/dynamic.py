"""Dynamic benchmarks: workloads and trace files encoded as names.

The whole execution stack — runner cache, sweep engine, result store,
fabric wire protocol — identifies a job by its *benchmark name* string
(plus config/accesses/seed/...).  That is what makes results portable
across processes and hosts: any worker can re-derive the trace from the
name alone.  This module extends the name space beyond the static
profile registry with two schemes:

* ``wl:<canonical-json>`` — a full :class:`~repro.workloads.synthetic.
  StreamWorkload` parameter set, canonically JSON-encoded into the
  name itself.  The adversarial fuzzer (:mod:`repro.scenarios.fuzzer`)
  uses this to push arbitrary candidate workloads through the ordinary
  sweep path: every candidate dedupes into the store under its exact
  parameters, and a worker process rebuilds the trace from nothing but
  the job spec.

* ``trace:<sha256-prefix>:<path>`` — a converted external trace file
  (:mod:`repro.scenarios.loaders`, internal text format, optionally
  gzipped).  The content digest is part of the name, so editing or
  regenerating the file changes every derived store key — a stale
  result can never be served for new bytes.

Both schemes are resolved by :func:`repro.experiments.runner.get_trace`
(and therefore by the exact simulator, the fast model, sweep workers,
and fabric agents alike).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, Optional

from repro.workloads.synthetic import StreamWorkload, WorkloadPhase
from repro.workloads.trace import Trace

#: Name prefix of inline-encoded workloads.
WORKLOAD_PREFIX = "wl:"
#: Name prefix of content-addressed trace files.
TRACE_PREFIX = "trace:"
#: Hex digits of the file digest embedded in ``trace:`` names.
TRACE_DIGEST_LEN = 12


def is_dynamic(benchmark: str) -> bool:
    """True when ``benchmark`` is a ``wl:`` or ``trace:`` name."""
    return benchmark.startswith((WORKLOAD_PREFIX, TRACE_PREFIX))


# ----------------------------------------------------------------------
# wl: — inline workload parameter sets
# ----------------------------------------------------------------------
def _dist_to_json(dist: Optional[Dict[int, float]]) -> Optional[Dict[str, float]]:
    """JSON object form of a length distribution (sorted int keys)."""
    if dist is None:
        return None
    return {str(length): float(dist[length]) for length in sorted(dist)}


def _dist_from_json(obj: Optional[Dict[str, float]]) -> Optional[Dict[int, float]]:
    """Inverse of :func:`_dist_to_json`."""
    if obj is None:
        return None
    return {int(length): float(weight) for length, weight in obj.items()}


def encode_workload(workload: StreamWorkload) -> str:
    """Canonical JSON text of one workload (sorted keys, no whitespace).

    The encoding is a pure function of the parameter values, so two
    processes that build the same workload arrive at the same name —
    and the same store keys.
    """
    payload = asdict(workload)
    payload["length_dist"] = _dist_to_json(workload.length_dist)
    payload["phases"] = [
        {
            "weight": float(phase.weight),
            "length_dist": _dist_to_json(phase.length_dist),
            "gap_mean": phase.gap_mean,
            "hot_fraction": phase.hot_fraction,
        }
        for phase in workload.phases
    ]
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def decode_workload(text: str) -> StreamWorkload:
    """Rebuild (and validate) a workload from :func:`encode_workload` text."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"malformed workload encoding: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("malformed workload encoding: expected an object")
    phases = tuple(
        WorkloadPhase(
            weight=float(phase["weight"]),
            length_dist=_dist_from_json(phase.get("length_dist")),
            gap_mean=phase.get("gap_mean"),
            hot_fraction=phase.get("hot_fraction"),
        )
        for phase in payload.get("phases", [])
    )
    try:
        workload = StreamWorkload(
            name=str(payload["name"]),
            length_dist=_dist_from_json(payload["length_dist"]),
            gap_mean=float(payload["gap_mean"]),
            hot_fraction=float(payload["hot_fraction"]),
            hot_lines=int(payload["hot_lines"]),
            write_fraction=float(payload["write_fraction"]),
            descending_fraction=float(payload["descending_fraction"]),
            interleave=int(payload["interleave"]),
            burstiness=float(payload["burstiness"]),
            phases=phases,
            phase_round=int(payload["phase_round"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed workload encoding: {exc}") from None
    workload.validate()
    return workload


def workload_benchmark(workload: StreamWorkload) -> str:
    """The ``wl:`` benchmark name for one workload (validated first)."""
    workload.validate()
    return WORKLOAD_PREFIX + encode_workload(workload)


def resolve_workload(benchmark: str) -> StreamWorkload:
    """The workload a ``wl:`` benchmark name encodes."""
    if not benchmark.startswith(WORKLOAD_PREFIX):
        raise ValueError(f"not a wl: benchmark name: {benchmark!r}")
    return decode_workload(benchmark[len(WORKLOAD_PREFIX):])


# ----------------------------------------------------------------------
# trace: — content-addressed trace files
# ----------------------------------------------------------------------
def file_digest(path: str) -> str:
    """Streaming SHA-256 of a file's bytes (compressed bytes for .gz)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def trace_benchmark(path: str) -> str:
    """The ``trace:`` benchmark name for one internal-format trace file.

    Embeds a digest prefix of the file's current content, so the name
    (and every store key derived from it) changes whenever the file
    does.
    """
    return f"{TRACE_PREFIX}{file_digest(path)[:TRACE_DIGEST_LEN]}:{path}"


def parse_trace_benchmark(benchmark: str) -> tuple:
    """Split a ``trace:`` name into ``(digest_prefix, path)``."""
    if not benchmark.startswith(TRACE_PREFIX):
        raise ValueError(f"not a trace: benchmark name: {benchmark!r}")
    rest = benchmark[len(TRACE_PREFIX):]
    digest, sep, path = rest.partition(":")
    if not sep or not digest or not path:
        raise ValueError(
            f"malformed trace benchmark {benchmark!r} "
            "(expected 'trace:<digest>:<path>')"
        )
    return digest, path


def load_trace_benchmark(benchmark: str, accesses: Optional[int] = None) -> Trace:
    """Load (a prefix of) the trace file a ``trace:`` name points at.

    The file's digest is re-verified against the name, so a result can
    never silently be computed from different bytes than the job spec
    names.  ``accesses`` caps the number of records replayed.
    """
    digest, path = parse_trace_benchmark(benchmark)
    actual = file_digest(path)[:len(digest)]
    if actual != digest:
        raise ValueError(
            f"trace file {path} changed since its name was derived "
            f"(digest {actual} != {digest}); re-derive the benchmark "
            "name with trace_benchmark()"
        )
    trace = Trace.load(path, name=benchmark, limit=accesses)
    if not trace.records:
        raise ValueError(f"trace file {path} holds no records")
    return trace
