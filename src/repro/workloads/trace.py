"""Line-granularity memory traces.

A trace record is ``(gap, line, is_write)``: the thread executes ``gap``
non-memory instructions, then touches cache line ``line``.  Records are
stored as plain tuples for speed; :class:`TraceRecord` is the readable
view used at API boundaries.

Traces round-trip through a simple text format (one record per line,
``gap line rw``) so generated workloads can be inspected, stored, and
replayed.  Paths ending in ``.gz`` are read and written gzip-compressed
transparently (converted external traces can be large —
docs/scenarios.md).
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple

RawRecord = Tuple[int, int, bool]


def open_text(path: str, mode: str = "r") -> IO[str]:
    """Open a text file, transparently gzipped when the path ends ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


@dataclass(frozen=True)
class TraceRecord:
    """One memory access: run ``gap`` instructions, then touch ``line``."""

    gap: int
    line: int
    is_write: bool


class Trace:
    """An ordered sequence of memory accesses for one hardware thread."""

    def __init__(self, records: Iterable[RawRecord], name: str = "trace") -> None:
        self.records: List[RawRecord] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        for gap, line, is_write in self.records:
            yield TraceRecord(gap, line, is_write)

    def __getitem__(self, i: int) -> TraceRecord:
        gap, line, w = self.records[i]
        return TraceRecord(gap, line, w)

    @property
    def instructions(self) -> int:
        """Total instruction count: every access is 1 instruction plus its gap."""
        return sum(r[0] for r in self.records) + len(self.records)

    @property
    def unique_lines(self) -> int:
        return len({r[1] for r in self.records})

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r[2]) / len(self.records)

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """A new trace holding records [start:stop] (sampling helper)."""
        return Trace(self.records[start:stop], name=f"{self.name}[{start}:{stop}]")

    def concat(self, other: "Trace") -> "Trace":
        """This trace followed by ``other`` (phase-splicing helper)."""
        return Trace(
            self.records + other.records, name=f"{self.name}+{other.name}"
        )

    @staticmethod
    def interleave(traces: Sequence["Trace"], chunk: int = 1) -> "Trace":
        """Round-robin interleave several traces in ``chunk``-sized runs.

        Useful for constructing multiprogrammed single-thread mixes (for
        true SMT, pass the traces separately to :class:`repro.system.
        simulator.System` instead).
        """
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        cursors = [0] * len(traces)
        records: List[RawRecord] = []
        while True:
            progressed = False
            for i, trace in enumerate(traces):
                take = trace.records[cursors[i] : cursors[i] + chunk]
                if take:
                    records.extend(take)
                    cursors[i] += len(take)
                    progressed = True
            if not progressed:
                break
        name = "|".join(t.name for t in traces)
        return Trace(records, name=name or "mix")

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace in the one-record-per-line text format."""
        with open_text(path, "w") as f:
            f.write(f"# trace {self.name}\n")
            for gap, line, is_write in self.records:
                f.write(f"{gap} {line} {int(is_write)}\n")

    @classmethod
    def load(cls, path: str, name: str = "", limit: Optional[int] = None) -> "Trace":
        """Read a trace written by :meth:`save`.

        Malformed lines raise a :class:`ValueError` naming the file,
        the 1-based line number, and the offending text; ``gap`` must
        be non-negative (a negative gap would run the core's
        instruction clock backwards).  ``limit`` caps the number of
        records read (replay prefixes of huge converted traces).
        """
        records: List[RawRecord] = []
        with open_text(path) as f:
            for lineno, raw in enumerate(f, start=1):
                raw = raw.strip()
                if not raw or raw.startswith("#"):
                    continue
                parts = raw.split()
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}:{lineno}: malformed trace record {raw!r} "
                        f"(expected 'gap line rw', got {len(parts)} fields)"
                    )
                try:
                    gap, line, w = int(parts[0]), int(parts[1]), int(parts[2])
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: non-integer field in trace "
                        f"record {raw!r} (expected 'gap line rw')"
                    ) from None
                if gap < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative gap {gap} in trace "
                        f"record {raw!r} (gaps are instruction counts)"
                    )
                records.append((gap, line, bool(w)))
                if limit is not None and len(records) >= limit:
                    break
        return cls(records, name or path)
