"""Per-benchmark workload profiles for the three evaluation suites.

Each profile is the synthetic stand-in for one benchmark of the paper's
evaluation (Section 4.1): the 17 SPEC2006fp benchmarks, the 8 NAS class
B benchmarks, and the 5 IBM commercial workloads.  The parameters encode
what the paper tells us about each program:

* **memory intensity** via ``gap_mean`` (instructions between line
  touches) and ``hot_fraction`` (cache-absorbed accesses) — e.g.
  "gamess, namd, povray, and calculix are not memory intensive";
* **stream-length mixture** via ``length_dist``, a *stream-count*
  distribution matching Figure 12 where the paper reports it (tpc-c
  ~37% of streams of length 2-5, trade2 ~49%, sap ~40%, notesbench
  ~62%, all with lengths 1-5 covering 78-96% of streams);
* **phase behaviour** via ``phases`` — commercial workloads alternate
  transaction-dominated (random access) and scan-dominated rounds, and
  GemsFDTD alternates field-update sweeps of different shapes, which
  yields the strongly epoch-varying SLHs of Figure 3;
* **interleaving pressure** via ``interleave`` and ``burstiness``, the
  number of live streams the Stream Filter must separate and how
  clustered each stream's touches are.

Absolute performance numbers cannot be expected to match a proprietary
cycle-accurate Power5+ simulator; the profiles are calibrated so the
*qualitative* results (who wins, roughly by how much, and why) line up.
EXPERIMENTS.md records paper-vs-measured for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.synthetic import StreamWorkload, WorkloadPhase

#: Default trace length (memory accesses) for full-suite experiments.
DEFAULT_ACCESSES = 30_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark: its suite, workload parameters, and provenance."""

    name: str
    suite: str
    workload: StreamWorkload
    memory_intensive: bool = True
    description: str = ""


def _wl(name: str, **kw) -> StreamWorkload:
    return StreamWorkload(name=name, **kw)


def _light(name: str, gap: float = 90.0, hot: float = 0.96) -> StreamWorkload:
    """A compute-bound benchmark: almost everything hits in cache."""
    return StreamWorkload(
        name=name,
        length_dist={1: 0.35, 2: 0.30, 3: 0.15, 4: 0.12, 8: 0.08},
        gap_mean=gap,
        hot_fraction=hot,
        hot_lines=900,
        write_fraction=0.10,
        interleave=2,
        burstiness=0.5,
    )


def _commercial(name: str, base_dist: Dict[int, float], scan_dist: Dict[int, float],
                gap: float, write: float, random_weight: float = 0.40) -> StreamWorkload:
    """A commercial server workload: transaction rounds (random touches)
    alternating with scan rounds (short sequential bursts).

    ``random_weight`` sets the share of transaction-dominated rounds;
    lowering it shifts the Figure 12 stream-count mix toward lengths
    2-5 (notesbench's ~62% versus tpc-c's ~37%).
    """
    return StreamWorkload(
        name=name,
        length_dist=base_dist,
        gap_mean=gap,
        hot_fraction=0.34,
        hot_lines=1000,
        write_fraction=write,
        interleave=6,
        burstiness=0.55,
        phases=(
            WorkloadPhase(
                weight=random_weight,
                length_dist={1: 0.80, 2: 0.14, 3: 0.06}),
            WorkloadPhase(weight=1.0 - random_weight, length_dist=scan_dist),
        ),
        phase_round=14_000,
    )


_SPEC: List[BenchmarkProfile] = [
    BenchmarkProfile(
        "bwaves", "spec2006fp",
        _wl("bwaves",
            length_dist={1: 0.40, 2: 0.18, 3: 0.08, 4: 0.10, 8: 0.10, 16: 0.14},
            gap_mean=24, hot_fraction=0.10, hot_lines=900,
            interleave=4, write_fraction=0.10, descending_fraction=0.10,
            burstiness=0.55),
        description="block-tridiagonal flow solver; long unit-stride streams"),
    BenchmarkProfile(
        "gamess", "spec2006fp", _light("gamess", gap=95, hot=0.97),
        memory_intensive=False,
        description="quantum chemistry; cache resident"),
    BenchmarkProfile(
        "milc", "spec2006fp",
        _wl("milc",
            length_dist={1: 0.24, 2: 0.26, 3: 0.15, 4: 0.14, 8: 0.21},
            gap_mean=30, hot_fraction=0.18, hot_lines=900,
            interleave=5, write_fraction=0.14, burstiness=0.5),
        description="lattice QCD; medium streams over large arrays"),
    BenchmarkProfile(
        "zeusmp", "spec2006fp",
        _wl("zeusmp",
            length_dist={1: 0.20, 2: 0.20, 4: 0.25, 8: 0.25, 16: 0.10},
            gap_mean=42, hot_fraction=0.35, hot_lines=1100,
            interleave=4, write_fraction=0.15, burstiness=0.5),
        description="astrophysical CFD"),
    BenchmarkProfile(
        "gromacs", "spec2006fp",
        _wl("gromacs",
            length_dist={1: 0.30, 2: 0.30, 4: 0.25, 8: 0.15},
            gap_mean=65, hot_fraction=0.75, hot_lines=1100,
            interleave=3, write_fraction=0.12, burstiness=0.5),
        description="molecular dynamics; mostly cache resident"),
    BenchmarkProfile(
        "cactusADM", "spec2006fp",
        _wl("cactusADM",
            length_dist={1: 0.15, 2: 0.20, 4: 0.30, 8: 0.25, 16: 0.10},
            gap_mean=38, hot_fraction=0.30, hot_lines=1100,
            interleave=4, write_fraction=0.16, burstiness=0.55),
        description="numerical relativity stencils"),
    BenchmarkProfile(
        "leslie3d", "spec2006fp",
        _wl("leslie3d",
            length_dist={1: 0.10, 2: 0.15, 4: 0.20, 8: 0.30, 16: 0.25},
            gap_mean=30, hot_fraction=0.14, hot_lines=900,
            interleave=4, write_fraction=0.13, burstiness=0.55),
        description="large-eddy turbulence; long streams"),
    BenchmarkProfile(
        "namd", "spec2006fp", _light("namd", gap=80, hot=0.96),
        memory_intensive=False,
        description="molecular dynamics; cache resident"),
    BenchmarkProfile(
        "dealII", "spec2006fp",
        _wl("dealII",
            length_dist={1: 0.35, 2: 0.25, 3: 0.15, 4: 0.15, 8: 0.10},
            gap_mean=55, hot_fraction=0.58, hot_lines=1200,
            interleave=4, write_fraction=0.12, burstiness=0.45),
        description="adaptive FEM; mixed locality"),
    BenchmarkProfile(
        "soplex", "spec2006fp",
        _wl("soplex",
            length_dist={1: 0.30, 2: 0.25, 4: 0.20, 8: 0.15, 16: 0.10},
            gap_mean=36, hot_fraction=0.35, hot_lines=1100,
            interleave=5, write_fraction=0.10, burstiness=0.5),
        description="simplex LP solver; sparse matrix sweeps"),
    BenchmarkProfile(
        "povray", "spec2006fp", _light("povray", gap=100, hot=0.97),
        memory_intensive=False,
        description="ray tracing; cache resident"),
    BenchmarkProfile(
        "calculix", "spec2006fp", _light("calculix", gap=70, hot=0.90),
        memory_intensive=False,
        description="structural FEM; mostly cache resident"),
    BenchmarkProfile(
        "GemsFDTD", "spec2006fp",
        _wl("GemsFDTD",
            length_dist={1: 0.35, 2: 0.35, 3: 0.10, 4: 0.06, 6: 0.05,
                         8: 0.05, 16: 0.04},
            gap_mean=28, hot_fraction=0.18, hot_lines=900,
            interleave=5, write_fraction=0.14, burstiness=0.5,
            phases=(
                WorkloadPhase(weight=0.35),
                WorkloadPhase(
                    weight=0.35,
                    length_dist={1: 0.10, 2: 0.62, 3: 0.12, 4: 0.08,
                                 8: 0.05, 16: 0.03}),
                WorkloadPhase(
                    weight=0.30,
                    length_dist={1: 0.90, 2: 0.05, 8: 0.03, 16: 0.02}),
            ),
            phase_round=10_000),
        description="FDTD electromagnetics; phase-varying short streams "
                    "(the paper's SLH showcase, Figures 2/3/16)"),
    BenchmarkProfile(
        "tonto", "spec2006fp",
        _wl("tonto",
            length_dist={1: 0.40, 2: 0.30, 3: 0.12, 4: 0.10, 8: 0.08},
            gap_mean=45, hot_fraction=0.50, hot_lines=1200,
            interleave=4, write_fraction=0.12, burstiness=0.45),
        description="quantum crystallography; short streams"),
    BenchmarkProfile(
        "lbm", "spec2006fp",
        _wl("lbm",
            length_dist={2: 0.05, 4: 0.10, 8: 0.25, 16: 0.60},
            gap_mean=26, hot_fraction=0.08, hot_lines=800,
            interleave=3, write_fraction=0.28, burstiness=0.6),
        description="lattice Boltzmann; the most stream-dominated"),
    BenchmarkProfile(
        "wrf", "spec2006fp",
        _wl("wrf",
            length_dist={1: 0.20, 2: 0.25, 4: 0.25, 8: 0.20, 16: 0.10},
            gap_mean=40, hot_fraction=0.30, hot_lines=1100,
            interleave=5, write_fraction=0.15, burstiness=0.5),
        description="weather model stencils"),
    BenchmarkProfile(
        "sphinx3", "spec2006fp",
        _wl("sphinx3",
            length_dist={1: 0.25, 2: 0.30, 3: 0.15, 4: 0.15, 8: 0.15},
            gap_mean=36, hot_fraction=0.35, hot_lines=1100,
            interleave=5, write_fraction=0.08, burstiness=0.5),
        description="speech recognition; medium streams"),
]

_NAS: List[BenchmarkProfile] = [
    BenchmarkProfile(
        "bt", "nas",
        _wl("bt", length_dist={1: 0.15, 2: 0.20, 4: 0.30, 8: 0.25, 16: 0.10},
            gap_mean=52, hot_fraction=0.36, hot_lines=1100,
            interleave=4, write_fraction=0.16, burstiness=0.55),
        description="block-tridiagonal CFD"),
    BenchmarkProfile(
        "cg", "nas",
        _wl("cg", length_dist={1: 0.45, 2: 0.25, 3: 0.12, 4: 0.10, 8: 0.08},
            gap_mean=40, hot_fraction=0.30, hot_lines=1100,
            interleave=6, write_fraction=0.08, burstiness=0.4),
        description="conjugate gradient; sparse, short streams"),
    BenchmarkProfile(
        "ep", "nas", _light("ep", gap=130, hot=0.98),
        memory_intensive=False,
        description="embarrassingly parallel; compute bound"),
    BenchmarkProfile(
        "ft", "nas",
        _wl("ft", length_dist={1: 0.10, 2: 0.15, 4: 0.25, 8: 0.30, 16: 0.20},
            gap_mean=48, hot_fraction=0.28, hot_lines=1000,
            interleave=4, write_fraction=0.18, burstiness=0.55),
        description="3-D FFT; long strided sweeps"),
    BenchmarkProfile(
        "is", "nas",
        _wl("is", length_dist={1: 0.55, 2: 0.20, 3: 0.10, 4: 0.08, 8: 0.07},
            gap_mean=46, hot_fraction=0.32, hot_lines=1800,
            interleave=8, write_fraction=0.25, burstiness=0.35),
        description="integer sort; scatter-dominated"),
    BenchmarkProfile(
        "lu", "nas",
        _wl("lu", length_dist={1: 0.20, 2: 0.25, 4: 0.25, 8: 0.20, 16: 0.10},
            gap_mean=52, hot_fraction=0.38, hot_lines=1100,
            interleave=4, write_fraction=0.15, burstiness=0.5),
        description="LU factorisation CFD"),
    BenchmarkProfile(
        "mg", "nas",
        _wl("mg", length_dist={1: 0.12, 2: 0.18, 4: 0.25, 8: 0.25, 16: 0.20},
            gap_mean=48, hot_fraction=0.28, hot_lines=1000,
            interleave=4, write_fraction=0.15, burstiness=0.55),
        description="multigrid; long sweeps at several scales"),
    BenchmarkProfile(
        "sp", "nas",
        _wl("sp", length_dist={1: 0.18, 2: 0.22, 4: 0.25, 8: 0.22, 16: 0.13},
            gap_mean=50, hot_fraction=0.32, hot_lines=1100,
            interleave=4, write_fraction=0.16, burstiness=0.55),
        description="scalar pentadiagonal CFD"),
]

_COMMERCIAL: List[BenchmarkProfile] = [
    BenchmarkProfile(
        "tpcc", "commercial",
        _commercial(
            "tpcc",
            base_dist={1: 0.55, 2: 0.14, 3: 0.10, 4: 0.07, 5: 0.06,
                       8: 0.05, 16: 0.03},
            scan_dist={1: 0.15, 2: 0.55, 3: 0.17, 4: 0.07, 5: 0.04,
                       8: 0.02},
            gap=16, write=0.24),
        description="OLTP; ~37% of streams of length 2-5 (Figure 12)"),
    BenchmarkProfile(
        "trade2", "commercial",
        _commercial(
            "trade2",
            base_dist={1: 0.40, 2: 0.20, 3: 0.12, 4: 0.10, 5: 0.07,
                       8: 0.07, 16: 0.04},
            scan_dist={1: 0.10, 2: 0.56, 3: 0.20, 4: 0.08, 5: 0.04,
                       8: 0.02},
            gap=17, write=0.22, random_weight=0.30),
        description="web brokerage; ~49% of streams of length 2-5"),
    BenchmarkProfile(
        "cpw2", "commercial",
        _commercial(
            "cpw2",
            base_dist={1: 0.50, 2: 0.17, 3: 0.11, 4: 0.08, 5: 0.06,
                       8: 0.05, 16: 0.03},
            scan_dist={1: 0.14, 2: 0.54, 3: 0.18, 4: 0.08, 5: 0.04,
                       8: 0.02},
            gap=18, write=0.24, random_weight=0.35),
        description="commercial processing workload (database server)"),
    BenchmarkProfile(
        "sap", "commercial",
        _commercial(
            "sap",
            base_dist={1: 0.50, 2: 0.16, 3: 0.10, 4: 0.08, 5: 0.06,
                       8: 0.06, 16: 0.04},
            scan_dist={1: 0.14, 2: 0.52, 3: 0.19, 4: 0.09, 5: 0.04,
                       8: 0.02},
            gap=17, write=0.22, random_weight=0.35),
        description="database workload; ~40% of streams of length 2-5"),
    BenchmarkProfile(
        "notesbench", "commercial",
        _commercial(
            "notesbench",
            base_dist={1: 0.28, 2: 0.28, 3: 0.16, 4: 0.10, 5: 0.08,
                       8: 0.06, 16: 0.04},
            scan_dist={1: 0.06, 2: 0.56, 3: 0.22, 4: 0.10, 5: 0.04,
                       8: 0.02},
            gap=16, write=0.20, random_weight=0.20),
        description="Lotus Notes server; ~62% of streams of length 2-5"),
]

#: All profiles keyed by benchmark name.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    p.name: p for p in (*_SPEC, *_NAS, *_COMMERCIAL)
}

#: Suite name -> ordered benchmark names.
SUITES: Dict[str, Tuple[str, ...]] = {
    "spec2006fp": tuple(p.name for p in _SPEC),
    "nas": tuple(p.name for p in _NAS),
    "commercial": tuple(p.name for p in _COMMERCIAL),
}

#: The paper's detailed-results set (Figures 11-16).
FOCUS_BENCHMARKS: Tuple[str, ...] = (
    "bwaves", "milc", "GemsFDTD", "tonto",
    "tpcc", "trade2", "sap", "notesbench",
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name.

    Besides the static registry, ``wl:<canonical-json>`` names resolve
    to a dynamic profile carrying the decoded workload — the scheme the
    adversarial fuzzer uses to run arbitrary candidate workloads
    through the ordinary job path (see :mod:`repro.workloads.dynamic`).
    """
    if name.startswith("wl:"):
        from repro.workloads.dynamic import resolve_workload

        return BenchmarkProfile(
            name=name, suite="dynamic", workload=resolve_workload(name),
            description="inline-encoded dynamic workload",
        )
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def suite_benchmarks(suite: str) -> Tuple[str, ...]:
    """Benchmark names of one suite, in the paper's figure order."""
    try:
        return SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; known: {sorted(SUITES)}") from None
