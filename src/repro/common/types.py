"""Core value types shared by every subsystem.

The simulator works at *cache-line granularity*: every address handled by
the memory controller, the caches, and the prefetcher is a line index
(`byte_address // LINE_SIZE`).  The Power5+ uses 128-byte L2/L3 lines, so
that is the line size used throughout.

Two clock domains exist:

* **CPU cycles** (2.132 GHz in the paper) — used by the core model and for
  Stream Filter lifetimes.
* **MC cycles** (the DDR2-533 bus clock, 266 MHz) — the master simulation
  clock.  One MC cycle equals ``CoreConfig.cpu_ratio`` CPU cycles (8 by
  default, since 2132 / 266 is approximately 8).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

#: Cache line size in bytes (Power5+ L2/L3 line size).
LINE_SIZE = 128


class CommandKind(enum.Enum):
    """What a memory command asks the DRAM to do."""

    READ = "read"
    WRITE = "write"


class Provenance(enum.Enum):
    """Who generated a command.

    At the memory controller, processor-side prefetches are
    *indistinguishable* from demand reads (paper Section 3, Figure 1 note);
    the provenance tag exists only for statistics and for identifying
    memory-side prefetches, which really are treated differently (they sit
    in the Low Priority Queue).
    """

    DEMAND = "demand"
    PS_PREFETCH = "ps_prefetch"
    MS_PREFETCH = "ms_prefetch"

    @property
    def is_regular(self) -> bool:
        """True for commands the controller treats as regular traffic."""
        return self is not Provenance.MS_PREFETCH


class Direction(enum.Enum):
    """Direction of a detected stream."""

    ASCENDING = 1
    DESCENDING = -1

    @property
    def step(self) -> int:
        """Line-address delta of one stream step (+1 or -1)."""
        return self.value


_command_ids = itertools.count()


@dataclass(slots=True)
class MemoryCommand:
    """One line-granularity command flowing through the memory controller.

    Slotted: tens of thousands are allocated per run, and the
    controller's hot loops read their fields every cycle.

    Attributes:
        kind: READ or WRITE.
        line: line address (byte address // LINE_SIZE).
        thread: hardware thread that generated the command.
        provenance: demand, processor-side prefetch, or memory-side prefetch.
        arrival: MC cycle at which the command entered the controller
            (also the timestamp used by scheduling policy 5).
        uid: unique, monotonically increasing id (tie-breaker / debugging).
    """

    kind: CommandKind
    line: int
    thread: int = 0
    provenance: Provenance = Provenance.DEMAND
    arrival: int = 0
    uid: int = field(default_factory=lambda: next(_command_ids))

    @property
    def is_read(self) -> bool:
        return self.kind is CommandKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is CommandKind.WRITE

    @property
    def is_ms_prefetch(self) -> bool:
        return self.provenance is Provenance.MS_PREFETCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryCommand({self.kind.value}, line={self.line:#x}, "
            f"t{self.thread}, {self.provenance.value}, arr={self.arrival})"
        )
