"""Shared building blocks: command types, configuration, statistics.

Everything in the simulator communicates through the small vocabulary
defined here: :class:`~repro.common.types.MemoryCommand` objects flowing
through queues, configuration dataclasses in :mod:`repro.common.config`,
and the :class:`~repro.common.stats.Stats` counter bag.
"""

from repro.common.stats import Stats
from repro.common.types import (
    LINE_SIZE,
    CommandKind,
    Direction,
    MemoryCommand,
    Provenance,
)

__all__ = [
    "LINE_SIZE",
    "CommandKind",
    "Direction",
    "MemoryCommand",
    "Provenance",
    "Stats",
]
