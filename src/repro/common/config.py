"""Configuration dataclasses for every simulated block.

Defaults reproduce the configuration evaluated in the paper (Section 5.1):
8-slot Stream Filter, 16-entry Likelihood Tables per direction, a 16-line
(2 KB) Prefetch Buffer, an LPQ with the same depth (3) as the CAQ, and a
DDR2-533 memory system behind a Power5+-style controller.

All configs are plain frozen-ish dataclasses (mutable for ease of sweep
construction, but treated as immutable once a simulation starts).  Use
:func:`dataclasses.replace` to derive sweep points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class DRAMTimingConfig:
    """DDR2-533 timing in DRAM bus cycles (tCK = 3.75 ns).

    Values follow a Micron DDR2-533 (-37E) datasheet rounded to bus
    cycles.  ``burst_cycles`` is the time the data bus is occupied by one
    128-byte line: 16 beats on an 8-byte DDR bus = 8 bus cycles.
    """

    t_ck_ns: float = 3.75
    t_rcd: int = 4  # ACT -> CAS
    t_cl: int = 4  # CAS -> first data
    t_rp: int = 4  # PRE -> ACT
    t_ras: int = 12  # ACT -> PRE
    t_rc: int = 16  # ACT -> ACT, same bank
    t_wr: int = 4  # end of write burst -> PRE
    t_wl: int = 3  # write CAS -> first data
    t_ccd: int = 2  # CAS -> CAS, same rank
    # One 128 B line over the Power5+'s two-channel, 16-byte-wide DDR2
    # interface: 8 beats = 4 bus cycles of data-bus occupancy.
    burst_cycles: int = 4
    # Refresh: one all-bank refresh per rank every t_refi cycles,
    # occupying the rank for t_rfc.  t_refi = 0 disables refresh
    # modelling (the calibrated default; enabling it slows every
    # configuration uniformly by ~1-2%).
    t_refi: int = 0
    t_rfc: int = 34

    def validate(self) -> None:
        if self.t_rc < self.t_ras + self.t_rp:
            raise ValueError("t_rc must cover t_ras + t_rp")
        for name in ("t_rcd", "t_cl", "t_rp", "t_ras", "burst_cycles"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_refi < 0 or self.t_rfc <= 0:
            raise ValueError("t_refi must be >= 0 and t_rfc positive")
        if self.t_refi and self.t_refi <= self.t_rfc:
            raise ValueError("t_refi must exceed t_rfc")


@dataclass
class DRAMConfig:
    """DRAM organisation: one channel of `ranks` x `banks_per_rank` banks.

    ``row_lines`` is the number of cache lines per DRAM row (8 KB row /
    128 B line = 64).  Address mapping interleaves consecutive lines
    across banks of a rank first, then ranks, to spread streams over
    banks (the mapping used by the Power4/Power5 memory subsystem at line
    granularity).
    """

    ranks: int = 2
    banks_per_rank: int = 8
    row_lines: int = 64
    #: "open" keeps rows open after access (row-hit friendly, the
    #: Power5+ policy); "closed" auto-precharges after every access.
    page_policy: str = "open"
    timing: DRAMTimingConfig = field(default_factory=DRAMTimingConfig)

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    def validate(self) -> None:
        if self.ranks <= 0 or self.banks_per_rank <= 0:
            raise ValueError("ranks and banks_per_rank must be positive")
        if self.row_lines <= 0:
            raise ValueError("row_lines must be positive")
        if self.page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.timing.validate()


@dataclass
class DRAMPowerConfig:
    """Current-based (Micron-style) DDR2 power model parameters.

    Energies are in nanojoules per event; background power in milliwatts
    per rank.  The defaults are derived from Micron DDR2-533 IDD numbers
    for a 2-rank DIMM and give the paper's qualitative regime: background
    power dominates, so extra prefetch traffic raises power only a few
    percent while shorter runtime cuts total energy.
    """

    e_activate_nj: float = 3.0  # ACT + PRE pair, per event
    e_read_nj: float = 4.2  # one line read burst (incl. I/O)
    e_write_nj: float = 4.6  # one line write burst (incl. ODT)
    p_background_active_mw: float = 260.0  # per rank, any bank open
    # Reserved for a closed-page / idle-tracking accounting mode; the
    # open-page model charges active standby throughout (see
    # DRAMPowerModel docstring for the rationale).
    p_background_idle_mw: float = 180.0
    p_refresh_mw: float = 35.0  # per rank, folded into background

    def validate(self) -> None:
        for name in (
            "e_activate_nj",
            "e_read_nj",
            "e_write_nj",
            "p_background_active_mw",
            "p_background_idle_mw",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class CacheConfig:
    """One set-associative cache level.

    ``replacement`` selects the victim policy: ``"lru"`` (true LRU, the
    paper's assumption for the Prefetch Buffer) or ``"tree_plru"`` (the
    cheaper pseudo-LRU used by large hardware arrays).
    """

    size_bytes: int
    assoc: int
    latency: int  # CPU cycles for a hit at this level
    line_size: int = 128
    replacement: str = "lru"

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.assoc)

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.size_bytes % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        if self.num_lines < self.assoc:
            raise ValueError("cache smaller than one set")
        if self.replacement not in ("lru", "tree_plru"):
            raise ValueError("replacement must be 'lru' or 'tree_plru'")


@dataclass
class HierarchyConfig:
    """Power5+-like three-level data-cache hierarchy.

    Associativities and latencies follow the Power5+ (L1D 4-way 1-cycle,
    L2 10-way 13-cycle, off-chip L3 12-way ~90-cycle); L2/L3 *capacities*
    are scaled down (1.92 MB -> 160 KB, 36 MB -> 512 KB) in proportion to
    the sampled trace lengths this reproduction simulates, so that
    capacity behaviour (hot-set residency, dirty write-back traffic)
    matches what million-instruction samples see on the full-size
    hierarchy.  See DESIGN.md Section 5.
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, latency=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(160 * 1024, 10, latency=13)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 12, latency=90)
    )

    def validate(self) -> None:
        self.l1.validate()
        self.l2.validate()
        self.l3.validate()


@dataclass
class StreamFilterConfig:
    """The per-thread Stream Filter (paper Section 3.3).

    A slot is initialised to ``lifetime_init`` at allocation, extended by
    ``lifetime_increment`` each time its stream advances (capped at
    ``lifetime_cap`` ahead of now), and evicted — crediting its length to
    the SLH — when the lifetime runs out.

    ``lifetime_unit`` selects the clock the lifetime counts:

    * ``"reads"`` (default) — Read commands observed by this thread's
      filter.  This normalises slot turnover against the order-of-
      magnitude arrival-rate differences between benchmark suites.
    * ``"cpu"`` — processor cycles, the paper's literal mechanism ("at
      every processor cycle, the lifetime fields are decremented by
      one").  Values should then be a few thousand.

    The deviation is documented in DESIGN.md; both modes are tested.
    """

    slots: int = 8
    lifetime_init: int = 5
    lifetime_increment: int = 5
    lifetime_cap: int = 40
    lifetime_unit: str = "reads"

    def validate(self) -> None:
        if self.slots <= 0:
            raise ValueError("slots must be positive")
        if self.lifetime_init <= 0 or self.lifetime_increment < 0:
            raise ValueError("lifetimes must be positive")
        if self.lifetime_unit not in ("reads", "cpu"):
            raise ValueError("lifetime_unit must be 'reads' or 'cpu'")


@dataclass
class SLHConfig:
    """Stream Length Histogram / Likelihood Table configuration.

    ``table_len`` is Lm, the longest tracked stream length (16 in the
    paper); ``epoch_reads`` is the epoch length in Read commands.  The
    paper's Figure 3 uses 2000-read epochs but leaves the evaluated
    epoch length unstated; 1000 adapts twice as fast across the phase
    changes our shorter sampled traces compress together.
    """

    table_len: int = 16
    epoch_reads: int = 1000

    def validate(self) -> None:
        if self.table_len < 2:
            raise ValueError("table_len must be at least 2")
        if self.epoch_reads <= 0:
            raise ValueError("epoch_reads must be positive")


@dataclass
class PrefetchBufferConfig:
    """The memory-side Prefetch Buffer: 16 x 128 B (2 KB), set-associative."""

    entries: int = 16
    assoc: int = 4

    def validate(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ValueError("entries and assoc must be positive")
        if self.entries % self.assoc:
            raise ValueError("entries must be a multiple of assoc")


@dataclass
class AdaptiveSchedulingConfig:
    """Adaptive Scheduling (paper Section 3.5).

    The controller counts, per epoch, regular commands blocked from
    entering the CAQ by a bank held by an in-flight memory-side prefetch.
    If the count exceeds ``raise_threshold`` the policy steps toward 1
    (most conservative); below ``lower_threshold`` it steps toward 5.
    """

    enabled: bool = True
    fixed_policy: Optional[int] = None  # 1..5 to pin a policy; None = adapt
    initial_policy: int = 1  # start conservative; relax when conflicts are rare
    raise_threshold: int = 40
    lower_threshold: int = 4

    def validate(self) -> None:
        if self.fixed_policy is not None and not 1 <= self.fixed_policy <= 5:
            raise ValueError("fixed_policy must be in 1..5")
        if not 1 <= self.initial_policy <= 5:
            raise ValueError("initial_policy must be in 1..5")
        if self.lower_threshold > self.raise_threshold:
            raise ValueError("lower_threshold must not exceed raise_threshold")


#: Valid engine selections for the memory-side prefetcher.
MS_ENGINES = ("asd", "nextline", "p5")


@dataclass
class MemorySidePrefetcherConfig:
    """The memory-side prefetcher that lives in the memory controller.

    ``engine`` selects what drives prefetch generation:

    * ``"asd"`` — Adaptive Stream Detection (the paper's contribution);
    * ``"nextline"`` — always prefetch the next line (Figure 11 baseline);
    * ``"p5"`` — a Power5-style two-miss-confirm stream engine relocated
      into the controller (Figure 11 baseline).

    ``degree`` > 1 enables multi-line prefetching via the generalised
    inequality (6) — described but not evaluated in the paper; evaluated
    here as an extension.
    """

    enabled: bool = False
    engine: str = "asd"
    degree: int = 1
    stream_filter: StreamFilterConfig = field(default_factory=StreamFilterConfig)
    slh: SLHConfig = field(default_factory=SLHConfig)
    buffer: PrefetchBufferConfig = field(default_factory=PrefetchBufferConfig)
    lpq_depth: int = 3
    scheduling: AdaptiveSchedulingConfig = field(
        default_factory=AdaptiveSchedulingConfig
    )

    def validate(self) -> None:
        if self.engine not in MS_ENGINES:
            raise ValueError(f"engine must be one of {MS_ENGINES}")
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.lpq_depth <= 0:
            raise ValueError("lpq_depth must be positive")
        self.stream_filter.validate()
        self.slh.validate()
        self.buffer.validate()
        self.scheduling.validate()


@dataclass
class ProcessorSidePrefetcherConfig:
    """Processor-side prefetcher (paper Section 4.2 + the future-work
    ASD variant).

    ``engine="power5"`` (default) is the stock Power5 unit: it waits for
    two consecutive cache-line misses before engaging (two-miss
    confirmation), tracks up to ``detect_entries`` candidate lines and
    ``max_streams`` concurrent streams, and in steady state keeps
    ``l1_lead`` lines ahead for L1 and ``l2_lead`` for L2.

    ``engine="asd"`` implements the paper's stated future work: the same
    Adaptive Stream Detection machinery observing the L1-miss stream and
    prefetching up to ``lead`` lines ahead into the caches whenever
    inequality (6) approves (see
    :mod:`repro.prefetch.asd_processor_side`).
    """

    enabled: bool = False
    engine: str = "power5"
    detect_entries: int = 12
    max_streams: int = 8
    l1_lead: int = 1
    l2_lead: int = 4
    ramp: int = 1  # initial lead on confirmation; grows to l2_lead
    # ASD-engine parameters
    lead: int = 4
    asd_stream_filter: StreamFilterConfig = field(
        default_factory=StreamFilterConfig
    )
    asd_slh: SLHConfig = field(default_factory=SLHConfig)

    def validate(self) -> None:
        if self.engine not in ("power5", "asd"):
            raise ValueError("engine must be 'power5' or 'asd'")
        if self.detect_entries <= 0 or self.max_streams <= 0:
            raise ValueError("table sizes must be positive")
        if self.l1_lead < 1 or self.l2_lead < self.l1_lead:
            raise ValueError("need l2_lead >= l1_lead >= 1")
        if not 1 <= self.ramp <= self.l2_lead:
            raise ValueError("need 1 <= ramp <= l2_lead")
        if not 1 <= self.lead < self.asd_slh.table_len:
            raise ValueError("need 1 <= lead < asd_slh.table_len")
        self.asd_stream_filter.validate()
        self.asd_slh.validate()


#: Valid reorder-queue scheduler selections.
SCHEDULERS = ("in_order", "memoryless", "ahb")


@dataclass
class ControllerConfig:
    """Power5+-style memory controller shell.

    Read/Write reorder queues feed a small FIFO CAQ (depth 3 on the
    Power5+) through a pluggable scheduler; the Final Scheduler arbitrates
    between the CAQ and the prefetcher's LPQ.
    """

    read_queue_depth: int = 8
    write_queue_depth: int = 8
    caq_depth: int = 3
    scheduler: str = "ahb"
    write_drain_threshold: int = 6  # start draining writes at this occupancy
    overhead_mc_cycles: int = 2  # fixed command/return path overhead
    pb_hit_latency_mc: int = 2  # extra latency of a Prefetch Buffer hit

    def validate(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}")
        for name in ("read_queue_depth", "write_queue_depth", "caq_depth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 <= self.write_drain_threshold <= self.write_queue_depth:
            raise ValueError("write_drain_threshold out of range")


@dataclass
class CoreConfig:
    """First-order trace-driven core.

    One instruction retires per CPU cycle while no load is blocking.
    Loads that miss to memory may overlap up to ``mlp`` outstanding line
    misses before the core stalls; store misses retire without stalling
    (write-validate allocation) and produce DRAM writes through dirty
    evictions.
    """

    cpu_ratio: int = 8  # CPU cycles per MC cycle (2132 MHz / 266 MHz)
    # Demand misses the core overlaps before stalling.  The default of 1
    # models the dependence-serialized miss behaviour of the sampled
    # traces; higher values emulate more aggressive out-of-order overlap
    # (prefetching gains shrink accordingly, as on any machine whose
    # core already hides latency itself).
    mlp: int = 1

    def validate(self) -> None:
        if self.cpu_ratio <= 0 or self.mlp <= 0:
            raise ValueError("cpu_ratio and mlp must be positive")


@dataclass
class SystemConfig:
    """Everything needed to instantiate one simulated system."""

    name: str = "custom"
    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    dram_power: DRAMPowerConfig = field(default_factory=DRAMPowerConfig)
    ms_prefetcher: MemorySidePrefetcherConfig = field(
        default_factory=MemorySidePrefetcherConfig
    )
    ps_prefetcher: ProcessorSidePrefetcherConfig = field(
        default_factory=ProcessorSidePrefetcherConfig
    )
    threads: int = 1

    def validate(self) -> "SystemConfig":
        """Validate every sub-config; returns self for chaining."""
        self.core.validate()
        self.hierarchy.validate()
        self.controller.validate()
        self.dram.validate()
        self.dram_power.validate()
        self.ms_prefetcher.validate()
        self.ps_prefetcher.validate()
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        return self

    def derive(self, **changes) -> "SystemConfig":
        """Return a shallow-copied config with top-level fields replaced."""
        return replace(self, **changes)
