"""A tiny counter bag used by every simulated block.

A :class:`Stats` object is a string-keyed accumulator of numeric values.
Blocks bump counters as events happen; analysis code reads them at the
end of a run.  Missing keys read as 0, so reporting code never needs
``.get(..., 0)`` chains.

Two accounting conventions used by the simulator's hot loops:

* **Per-cycle integrals** (``ticks``, ``occ_*``): every simulated MC
  cycle is accounted, *including* cycles the event-driven main loop
  fast-forwards over (those are folded in as one bulk addition), so
  ``occ_x / ticks`` is a true time average over the whole run, not an
  average conditioned on executed cycles.
* **Hot-path batching**: blocks that bump several counters per cycle
  may hold on to :meth:`Stats.raw` and add into the mapping directly;
  missing keys read as 0.0 there too, so ``values["k"] += 1`` behaves
  exactly like :meth:`bump`.

Membership contract (pinned by tests): a key is ``in`` a ``Stats``
exactly when something *wrote* it — ``bump``/``set``/``merge`` or an
add through :meth:`raw`.  Reads never materialize: ``stats["missing"]``
and ``stats.raw()["missing"]`` both return 0 and leave ``len``,
iteration, and ``in`` unchanged.  (The old ``defaultdict`` backing
broke this: any read through ``raw()`` inserted the key, so ``in`` and
``len`` depended on who had *looked*.)
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class _CounterMap(dict):
    """Dict whose missing keys read as 0.0 without materializing.

    Unlike ``defaultdict(float)``, ``__missing__`` does **not** insert
    the key — so hot-path augmented adds (``d[k] += 1`` = read 0.0,
    add, store) work unchanged, while plain reads stay side-effect
    free.
    """

    __slots__ = ()

    def __missing__(self, key: str) -> float:
        return 0.0


class Stats:
    """String-keyed numeric accumulator with namespacing support."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = _CounterMap()

    def bump(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to counter ``key``."""
        self._values[key] += amount

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key`` with ``value``."""
        self._values[key] = value

    def raw(self) -> Dict[str, float]:
        """The live underlying mapping, for hot-path batched updates.

        Adding into the returned mapping is equivalent to :meth:`bump`
        but skips a method call per counter.  Missing keys read as 0.0
        *without* being inserted, so reads through this mapping never
        change membership (``in``/``len``/iteration) — callers may
        freely mix batched adds and probes.
        """
        return self._values

    def __getitem__(self, key: str) -> float:
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        """True exactly when ``key`` has been written (never by reads)."""
        return key in self._values

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters as a plain dict."""
        return dict(self._values)

    def merge(self, other: Mapping[str, float], prefix: str = "") -> None:
        """Fold another stats mapping into this one, optionally prefixed."""
        items = other.as_dict().items() if isinstance(other, Stats) else other.items()
        for key, value in items:
            self._values[prefix + key] += value

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters; 0.0 when the denominator is 0."""
        denom = self._values.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._values.get(numerator, 0) / denom

    def snapshot_delta(self, prev: Mapping[str, float]) -> Dict[str, float]:
        """Per-key difference between the current counters and ``prev``.

        ``prev`` is a plain mapping (typically an earlier ``as_dict()``
        snapshot); keys missing from it count as 0, so the delta of a
        counter that first appeared after the snapshot is its full
        value.  Keys present only in ``prev`` are ignored — counters
        never disappear from a live ``Stats``.
        """
        return {
            key: value - prev.get(key, 0) for key, value in self._values.items()
        }

    def total(self, prefix: str = "") -> float:
        """Sum of every counter whose key starts with ``prefix``.

        With the default empty prefix this is the grand total of all
        counters.  Replaces the prefix-sum loops analysis code used to
        re-implement locally.
        """
        if not prefix:
            return sum(self._values.values())
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Stats({inner})"
