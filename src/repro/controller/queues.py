"""Reorder queues and the Centralized Arbiter Queue.

The reorder queues are where the scheduler may pick commands out of
order; the CAQ is strictly FIFO ("transmits commands to DRAM in FIFO
order", paper Section 3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.common.types import MemoryCommand


class CommandQueue:
    """A bounded queue supporting FIFO pop and positional removal."""

    def __init__(self, depth: int, name: str = "queue") -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.name = name
        self._items: Deque[MemoryCommand] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def head(self) -> Optional[MemoryCommand]:
        return self._items[0] if self._items else None

    def push(self, cmd: MemoryCommand) -> bool:
        if self.full:
            return False
        self._items.append(cmd)
        return True

    def pop(self) -> MemoryCommand:
        return self._items.popleft()

    def remove(self, cmd: MemoryCommand) -> None:
        self._items.remove(cmd)


class ReorderQueues:
    """The Read and Write reorder queues as one schedulable unit."""

    def __init__(self, read_depth: int, write_depth: int) -> None:
        self.reads = CommandQueue(read_depth, "reads")
        self.writes = CommandQueue(write_depth, "writes")

    @property
    def empty(self) -> bool:
        return self.reads.empty and self.writes.empty

    def __len__(self) -> int:
        return len(self.reads) + len(self.writes)

    def candidates(self, drain_writes: bool) -> List[MemoryCommand]:
        """Commands a scheduler may consider this cycle.

        Reads are always candidates; writes join only when draining
        (write queue pressure) or when there are no reads to serve.
        """
        out: List[MemoryCommand] = list(self.reads)
        if drain_writes or not out:
            out.extend(self.writes)
        return out

    def remove(self, cmd: MemoryCommand) -> None:
        """Remove a scheduled command from whichever queue holds it."""
        if cmd.is_write:
            self.writes.remove(cmd)
        else:
            self.reads.remove(cmd)

    def all_commands(self) -> Iterable[MemoryCommand]:
        yield from self.reads
        yield from self.writes
