"""The Power5+-style memory controller (paper Figure 1 / Figure 4).

Commands arrive into Read/Write **reorder queues**; a pluggable
**scheduler** (in-order, memoryless/first-ready, or AHB) moves one
command per cycle into the small FIFO **Centralized Arbiter Queue**;
the **Final Scheduler** arbitrates between the CAQ and the prefetcher's
Low Priority Queue under the active Adaptive Scheduling policy and
issues to DRAM.
"""

from repro.controller.controller import MemoryController
from repro.controller.queues import CommandQueue, ReorderQueues
from repro.controller.schedulers import build_scheduler

__all__ = [
    "CommandQueue",
    "MemoryController",
    "ReorderQueues",
    "build_scheduler",
]
