"""The Power5+-style memory controller with the embedded MS prefetcher.

Data path per MC cycle (paper Figures 1 and 4):

1. completions whose data transfer finished are delivered;
2. the **Final Scheduler** issues at most one command to DRAM, picking
   between the CAQ head and the LPQ head under the active Adaptive
   Scheduling policy — after re-checking the CAQ head against the
   Prefetch Buffer (the paper's second check point);
3. the **scheduler** moves at most one reorder-queue command into the
   CAQ — reads are checked against the Prefetch Buffer first (the
   paper's first check point) and squashed on a hit.

Reads entering the controller are forked into the Stream Filter before
any buffering, writes invalidate matching Prefetch Buffer entries, and
conflicts between regular commands and in-flight prefetches are counted
for Adaptive Scheduling and for Figure 13's "delayed regular commands".
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable, List, Optional, Set, Tuple

from repro.common.config import ControllerConfig
from repro.common.stats import Stats
from repro.common.types import MemoryCommand, Provenance
from repro.controller.queues import CommandQueue, ReorderQueues
from repro.controller.schedulers import build_scheduler
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice
from repro.prefetch.adaptive_scheduling import SchedulerView
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.telemetry.events import QueueDepthSample
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Called with (cmd, now) when a read's data is available to the chip.
ReadCallback = Callable[[MemoryCommand, int], None]

#: Ticks between QueueDepthSample events on an enabled tracer.
QUEUE_SAMPLE_INTERVAL = 256


class MemoryController:
    """Reorder queues -> scheduler -> CAQ -> Final Scheduler -> DRAM."""

    def __init__(
        self,
        config: ControllerConfig,
        dram: DRAMDevice,
        prefetcher: MemorySidePrefetcher,
        cpu_ratio: int = 8,
        on_read_complete: Optional[ReadCallback] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.dram = dram
        self.ms = prefetcher
        self.cpu_ratio = cpu_ratio
        self.on_read_complete = on_read_complete
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: set by the core: callable returning outstanding demand misses
        self.core_depth_probe: Optional[Callable[[], int]] = None
        self.queues = ReorderQueues(config.read_queue_depth, config.write_queue_depth)
        self.caq = CommandQueue(config.caq_depth, "CAQ")
        self.scheduler: Scheduler = build_scheduler(config.scheduler)
        self._completions: List[Tuple[int, int, MemoryCommand]] = []
        self._conflict_counted: Set[int] = set()
        self._delayed_counted: Set[int] = set()
        # lines with a write queued (reorder queue or CAQ): reads to
        # these lines are answered by store-forwarding, not DRAM
        self._pending_write_lines: Counter = Counter()
        self._now = 0
        self.ms.on_merge_ready = self._merge_ready
        self.stats = Stats()

    # ------------------------------------------------------------------
    # command entry
    # ------------------------------------------------------------------
    def can_accept_read(self) -> bool:
        return not self.queues.reads.full

    def can_accept_write(self) -> bool:
        return not self.queues.writes.full

    def enqueue(self, cmd: MemoryCommand, now: int) -> bool:
        """Admit a command into the reorder queues; False means retry."""
        if cmd.is_read:
            if self.queues.reads.full:
                self.stats.bump("read_rejects")
                return False
            cmd.arrival = now
            self.stats.bump("reads_arrived")
            if cmd.provenance is Provenance.PS_PREFETCH:
                self.stats.bump("reads_ps")
            else:
                self.stats.bump("reads_demand")
            # Figure 4: Reads fork into the Stream Filter on entry.
            self.ms.observe_read(cmd, now, now * self.cpu_ratio)
            self.queues.reads.push(cmd)
            return True
        if self.queues.writes.full:
            self.stats.bump("write_rejects")
            return False
        cmd.arrival = now
        self.stats.bump("writes_arrived")
        self.ms.observe_write(cmd)
        self.queues.writes.push(cmd)
        self._pending_write_lines[cmd.line] += 1
        return True

    # ------------------------------------------------------------------
    # per-cycle work
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._now = now
        self._deliver_completions(now)
        self.ms.tick(now * self.cpu_ratio, now)
        self._final_scheduler(now)
        self._reorder_to_caq(now)
        # occupancy integrals: averages fall out as sum / ticks
        self.stats.bump("ticks")
        self.stats.bump("occ_read_queue", len(self.queues.reads))
        self.stats.bump("occ_write_queue", len(self.queues.writes))
        self.stats.bump("occ_caq", len(self.caq))
        self.stats.bump("occ_lpq", len(self.ms.lpq))
        if self.tracer.enabled and now % QUEUE_SAMPLE_INTERVAL == 0:
            probe = self.core_depth_probe
            self.tracer.emit(
                QueueDepthSample(
                    t=now,
                    read_queue=len(self.queues.reads),
                    write_queue=len(self.queues.writes),
                    caq=len(self.caq),
                    lpq=len(self.ms.lpq),
                    core_outstanding=probe() if probe is not None else 0,
                )
            )

    def _deliver_completions(self, now: int) -> None:
        while self._completions and self._completions[0][0] <= now:
            _, _, cmd = heapq.heappop(self._completions)
            if cmd.is_ms_prefetch:
                self.ms.notify_complete(cmd)
            elif cmd.is_read:
                latency = now - cmd.arrival
                self.stats.bump(f"lat_sum_{cmd.provenance.value}", latency)
                self.stats.bump(f"lat_cnt_{cmd.provenance.value}")
                if latency > self.stats[f"lat_max_{cmd.provenance.value}"]:
                    self.stats.set(f"lat_max_{cmd.provenance.value}", latency)
                # log2-bucketed histogram: bucket b counts latencies in
                # [2^b, 2^(b+1)); bucket 0 holds 0- and 1-cycle responses
                self.stats.bump(
                    f"lat_hist_{cmd.provenance.value}_{max(latency, 1).bit_length() - 1}"
                )
                if self.on_read_complete is not None:
                    self.on_read_complete(cmd, now)

    def _respond_at(self, cmd: MemoryCommand, when: int) -> None:
        heapq.heappush(self._completions, (when, cmd.uid, cmd))

    def _merge_ready(self, cmd: MemoryCommand) -> None:
        """A read merged with an in-flight prefetch got its data."""
        self.stats.bump("merged_responses")
        self._respond_at(cmd, self._now + self.config.overhead_mc_cycles)

    # -- Final Scheduler ------------------------------------------------
    def _final_scheduler(self, now: int) -> None:
        # Second Prefetch Buffer check: the head of the CAQ may have been
        # covered by a prefetch that completed while it sat in the queue.
        while True:
            head = self.caq.head()
            if head is None or not head.is_read:
                break
            if self.ms.read_lookup(head.line):
                self.caq.pop()
                self.stats.bump("pb_hits_caq")
                self.stats.bump(f"pb_hits_{head.provenance.value}")
                self._respond_at(
                    head,
                    now
                    + self.config.pb_hit_latency_mc
                    + self.config.overhead_mc_cycles,
                )
            elif self.ms.try_merge(head):
                self.caq.pop()
                self.stats.bump("pb_merges_caq")
                self.stats.bump(f"pb_merges_{head.provenance.value}")
            else:
                break

        lpq = self.ms.lpq
        caq_head = self.caq.head()
        lpq_head = lpq.head()
        if caq_head is None and lpq_head is None:
            return

        use_lpq = False
        if self.ms.enabled and lpq_head is not None:
            drain = len(self.queues.writes) >= self.config.write_drain_threshold
            candidates = self.queues.candidates(drain)
            view = SchedulerView(
                caq_len=len(self.caq),
                caq_head_arrival=caq_head.arrival if caq_head else None,
                reorder_empty=self.queues.empty,
                reorder_has_issuable=Scheduler.has_issuable(
                    candidates, self.dram, now
                ),
                lpq_len=len(lpq),
                lpq_full=lpq.full,
                lpq_head_arrival=lpq_head.arrival,
            )
            use_lpq = self.ms.scheduler.allows_lpq(view)

        source = lpq if use_lpq else self.caq
        cmd = source.head()
        if cmd is None:
            return
        result = self.dram.try_issue(cmd, now)
        if result.accepted:
            source.pop()
            self.scheduler.notify_issue(cmd, self.dram)
            self._respond_at(cmd, result.completion + self.config.overhead_mc_cycles)
            if cmd.is_write:
                count = self._pending_write_lines.get(cmd.line, 0)
                if count <= 1:
                    self._pending_write_lines.pop(cmd.line, None)
                else:
                    self._pending_write_lines[cmd.line] = count - 1
            if cmd.is_ms_prefetch:
                self.ms.notify_issue(cmd)
                self.stats.bump("issued_prefetch")
            else:
                self.stats.bump("issued_regular")
                self._delayed_counted.discard(cmd.uid)
                self._conflict_counted.discard(cmd.uid)
        elif (
            result.blocked_by is Provenance.MS_PREFETCH
            and not cmd.is_ms_prefetch
            and cmd.uid not in self._delayed_counted
        ):
            # Figure 13: a regular command delayed by a memory-side prefetch.
            self._delayed_counted.add(cmd.uid)
            self.stats.bump("delayed_regular")

    # -- reorder queues -> CAQ -------------------------------------------
    def _reorder_to_caq(self, now: int) -> None:
        if self.queues.empty:
            return

        # Adaptive Scheduling feedback: the oldest read being held off the
        # CAQ by a bank occupied by an in-flight prefetch is a conflict.
        head_read = self.queues.reads.head()
        if (
            self.ms.enabled
            and head_read is not None
            and head_read.uid not in self._conflict_counted
            and self.dram.bank_holder(head_read.line, now) is Provenance.MS_PREFETCH
        ):
            self._conflict_counted.add(head_read.uid)
            self.ms.scheduler.record_conflict()

        if self.caq.full:
            return
        drain = len(self.queues.writes) >= self.config.write_drain_threshold
        candidates = self.queues.candidates(drain)
        cmd = self.scheduler.select(candidates, self.dram, now)
        if cmd is None:
            return
        self.queues.remove(cmd)
        if cmd.is_read:
            if self._pending_write_lines.get(cmd.line, 0) > 0:
                # read-after-write hazard: the freshest data for this
                # line sits in the write queue — forward it
                self.stats.bump("raw_forwards")
                self._respond_at(
                    cmd, now + self.config.overhead_mc_cycles
                )
                return
            if self.ms.read_lookup(cmd.line):
                # First Prefetch Buffer check: serve the read without DRAM.
                self.stats.bump("pb_hits_pre_caq")
                self.stats.bump(f"pb_hits_{cmd.provenance.value}")
                self._respond_at(
                    cmd,
                    now
                    + self.config.pb_hit_latency_mc
                    + self.config.overhead_mc_cycles,
                )
                return
            if self.ms.try_merge(cmd):
                self.stats.bump("pb_merges_pre_caq")
                self.stats.bump(f"pb_merges_{cmd.provenance.value}")
                return
        self.caq.push(cmd)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """Nothing queued or in flight anywhere (LPQ included)."""
        return (
            not self._completions
            and self.queues.empty
            and self.caq.empty
            and len(self.ms.lpq) == 0
        )

    @property
    def pb_hits(self) -> float:
        return self.stats["pb_hits_pre_caq"] + self.stats["pb_hits_caq"]
