"""The Power5+-style memory controller with the embedded MS prefetcher.

Data path per MC cycle (paper Figures 1 and 4):

1. completions whose data transfer finished are delivered;
2. the **Final Scheduler** issues at most one command to DRAM, picking
   between the CAQ head and the LPQ head under the active Adaptive
   Scheduling policy — after re-checking the CAQ head against the
   Prefetch Buffer (the paper's second check point);
3. the **scheduler** moves at most one reorder-queue command into the
   CAQ — reads are checked against the Prefetch Buffer first (the
   paper's first check point) and squashed on a hit.

Reads entering the controller are forked into the Stream Filter before
any buffering, writes invalidate matching Prefetch Buffer entries, and
conflicts between regular commands and in-flight prefetches are counted
for Adaptive Scheduling and for Figure 13's "delayed regular commands".
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable, List, Optional, Set, Tuple

from repro.common.config import ControllerConfig
from repro.common.stats import Stats
from repro.common.types import MemoryCommand, Provenance
from repro.controller.queues import CommandQueue, ReorderQueues
from repro.controller.schedulers import build_scheduler
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice
from repro.prefetch.adaptive_scheduling import SchedulerView
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.telemetry.events import QueueDepthSample
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Called with (cmd, now) when a read's data is available to the chip.
ReadCallback = Callable[[MemoryCommand, int], None]

#: Ticks between QueueDepthSample events on an enabled tracer.
QUEUE_SAMPLE_INTERVAL = 256

#: Per-provenance latency counter names, precomputed so completion
#: delivery (one of the hottest paths) never builds f-strings.
# lint: stat-prefixes(lat_sum_, lat_cnt_, lat_max_, lat_hist_)
_LAT_KEYS = {
    prov: (
        f"lat_sum_{prov.value}",
        f"lat_cnt_{prov.value}",
        f"lat_max_{prov.value}",
        f"lat_hist_{prov.value}_",
    )
    for prov in Provenance
}


class MemoryController:
    """Reorder queues -> scheduler -> CAQ -> Final Scheduler -> DRAM."""

    def __init__(
        self,
        config: ControllerConfig,
        dram: DRAMDevice,
        prefetcher: MemorySidePrefetcher,
        cpu_ratio: int = 8,
        on_read_complete: Optional[ReadCallback] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.dram = dram
        self.ms = prefetcher
        self.cpu_ratio = cpu_ratio
        self.on_read_complete = on_read_complete
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: set by the core: callable returning outstanding demand misses
        self.core_depth_probe: Optional[Callable[[], int]] = None
        self.queues = ReorderQueues(config.read_queue_depth, config.write_queue_depth)
        self.caq = CommandQueue(config.caq_depth, "CAQ")
        self.scheduler: Scheduler = build_scheduler(config.scheduler)
        self._completions: List[Tuple[int, int, MemoryCommand]] = []
        self._conflict_counted: Set[int] = set()
        self._delayed_counted: Set[int] = set()
        # lines with a write queued (reorder queue or CAQ): reads to
        # these lines are answered by store-forwarding, not DRAM
        self._pending_write_lines: Counter = Counter()
        self._now = 0
        self.ms.on_merge_ready = self._merge_ready
        self.stats = Stats()
        # hot path: the per-cycle occupancy integrals add straight into
        # the underlying counter mapping (see Stats.raw), and the queue
        # containers are aliased so a length probe is one len() call
        self._stat_values = self.stats.raw()
        self._rq_items = self.queues.reads._items
        self._wq_items = self.queues.writes._items
        self._caq_items = self.caq._items
        self._lpq_items = self.ms.lpq._queue

    # ------------------------------------------------------------------
    # command entry
    # ------------------------------------------------------------------
    def can_accept_read(self) -> bool:
        return not self.queues.reads.full

    def can_accept_write(self) -> bool:
        return not self.queues.writes.full

    def enqueue(self, cmd: MemoryCommand, now: int) -> bool:
        """Admit a command into the reorder queues; False means retry."""
        values = self._stat_values
        if cmd.is_read:
            if len(self._rq_items) >= self.queues.reads.depth:
                values["read_rejects"] += 1
                return False
            cmd.arrival = now
            values["reads_arrived"] += 1
            if cmd.provenance is Provenance.PS_PREFETCH:
                values["reads_ps"] += 1
            else:
                values["reads_demand"] += 1
            # Figure 4: Reads fork into the Stream Filter on entry.
            self.ms.observe_read(cmd, now, now * self.cpu_ratio)
            self._rq_items.append(cmd)
            return True
        if len(self._wq_items) >= self.queues.writes.depth:
            values["write_rejects"] += 1
            return False
        cmd.arrival = now
        values["writes_arrived"] += 1
        self.ms.observe_write(cmd)
        self.queues.writes.push(cmd)
        self._pending_write_lines[cmd.line] += 1
        return True

    # ------------------------------------------------------------------
    # per-cycle work
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._now = now
        completions = self._completions
        if completions and completions[0][0] <= now:
            self._deliver_completions(now)
        self.ms.tick(now * self.cpu_ratio, now)
        if self._caq_items or self._lpq_items:
            self._final_scheduler(now)
        if self._rq_items or self._wq_items:
            self._reorder_to_caq(now)
        # occupancy integrals: averages fall out as sum / ticks.  Every
        # simulated MC cycle lands here or in bulk_tick, so the
        # integrals cover wall-cycle time, not just executed ticks.
        values = self._stat_values
        values["ticks"] += 1
        values["occ_read_queue"] += len(self._rq_items)
        values["occ_write_queue"] += len(self._wq_items)
        values["occ_caq"] += len(self._caq_items)
        values["occ_lpq"] += len(self._lpq_items)
        if self.tracer.enabled and now % QUEUE_SAMPLE_INTERVAL == 0:
            self._emit_depth_sample(now)

    def tick_reference(self, now: int) -> None:
        """The literal per-cycle tick — one MC cycle's executable
        specification, matching the pre-fast-forward main loop: every
        pipeline stage is invoked unconditionally, the integrals go
        through the Stats API, and the MS block's clocks and engine
        tick every cycle.  ``run(loop="reference")`` steps the machine
        exclusively through this path; the guarded :meth:`tick` plus
        :meth:`bulk_tick` must land in exactly the same state (the
        golden equality test pins that)."""
        self._now = now
        self._deliver_completions(now)
        self.ms.tick_reference(now * self.cpu_ratio, now)
        self._final_scheduler(now)
        self._reorder_to_caq(now)
        # occupancy integrals: averages fall out as sum / ticks
        bump = self.stats.bump
        bump("ticks")
        bump("occ_read_queue", len(self.queues.reads))
        bump("occ_write_queue", len(self.queues.writes))
        bump("occ_caq", len(self.caq))
        bump("occ_lpq", len(self.ms.lpq))
        if self.tracer.enabled and now % QUEUE_SAMPLE_INTERVAL == 0:
            self._emit_depth_sample(now)

    def _emit_depth_sample(self, t: int) -> None:
        probe = self.core_depth_probe
        self.tracer.emit(
            QueueDepthSample(
                t=t,
                read_queue=len(self.queues.reads),
                write_queue=len(self.queues.writes),
                caq=len(self.caq),
                lpq=len(self.ms.lpq),
                core_outstanding=probe() if probe is not None else 0,
            )
        )

    # -- event-driven fast-forward support -------------------------------
    def bulk_tick(self, start: int, cycles: int) -> None:
        """Account ``cycles`` provably-inert MC cycles ``[start, start+cycles)``.

        The event-driven main loop calls this instead of ticking
        through a deterministic wait.  Queue contents are constant
        across such a window by construction, so the occupancy
        integrals are one multiplication each, and the telemetry
        samples a per-cycle loop would have emitted at
        ``QUEUE_SAMPLE_INTERVAL`` boundaries are emitted here with the
        (constant) depths — a fast-forward jump leaves no holes in the
        queue-depth series.
        """
        end = start + cycles - 1
        self._now = end
        self.ms.tick(end * self.cpu_ratio, end)
        if self._rq_items or self._wq_items:
            # CAQ-full wait: _reorder_to_caq still probes the oldest
            # read for a prefetch-held bank every cycle.  The hold is
            # monotone (held_until is frozen mid-wait), so the first
            # window cycle decides the whole window.
            head_read = self.queues.reads.head()
            if (
                self.ms.enabled
                and head_read is not None
                and head_read.uid not in self._conflict_counted
                and self.dram.bank_holder(head_read.line, start)
                is Provenance.MS_PREFETCH
            ):
                self._conflict_counted.add(head_read.uid)
                self.ms.scheduler.record_conflict()
        values = self._stat_values
        values["ticks"] += cycles
        values["occ_read_queue"] += len(self._rq_items) * cycles
        values["occ_write_queue"] += len(self._wq_items) * cycles
        values["occ_caq"] += len(self._caq_items) * cycles
        values["occ_lpq"] += len(self._lpq_items) * cycles
        if self.tracer.enabled:
            first = start + (-start) % QUEUE_SAMPLE_INTERVAL
            for t in range(first, end + 1, QUEUE_SAMPLE_INTERVAL):
                self._emit_depth_sample(t)

    def next_scheduler_event(
        self, now: int
    ) -> Tuple[Optional[int], Optional[MemoryCommand]]:
        """Earliest cycle at which the Final Scheduler could act.

        Pure query, only valid while the reorder->CAQ stage is frozen —
        reorder queues empty, or the CAQ full (the caller checks).
        Returns ``(cycle, refused)``:

        * ``(None, None)`` — the scheduler cannot act until some other
          event (a completion) changes machine state;
        * ``(-1, None)`` — the very next tick may act (Prefetch Buffer
          check point would fire); do not fast-forward;
        * ``(t, cmd)`` — the pending CAQ/LPQ head ``cmd`` clears DRAM's
          bank and bus constraints at cycle ``t``; every cycle before
          ``t`` is a deterministic wait.  ``cmd`` records that a
          per-cycle loop would have attempted (and been refused) DRAM
          issue each cycle — the fast-forward path mirrors the lazy
          refresh application and the first refusal's Figure-13
          accounting (see :meth:`note_wait_refusal`).
        """
        caq_items = self._caq_items
        caq_head = caq_items[0] if caq_items else None
        ms = self.ms
        lpq_items = self._lpq_items
        lpq_head = lpq_items[0] if lpq_items else None
        if caq_head is None and lpq_head is None:
            return None, None
        if caq_head is not None and caq_head.is_read and ms.would_serve(
            caq_head.line
        ):
            return -1, None
        use_lpq = False
        if ms.enabled and lpq_head is not None:
            # The policy predicates, inlined on the wait-path facts:
            # reorder_has_issuable (policy 2) is only read with an
            # empty CAQ, and the caller guarantees the reorder queues
            # are empty whenever the CAQ is — so with an empty CAQ
            # every policy (1's reorder_empty included) allows the LPQ
            # head (``allows_lpq`` on the equivalent SchedulerView
            # agrees; the golden equality test pins this).
            caq_len = len(caq_items)
            policy = ms.scheduler.policy
            if caq_len == 0:
                use_lpq = True
            elif policy == 4:
                use_lpq = caq_len <= 1 and len(lpq_items) >= ms.lpq.depth
            elif policy == 5:
                use_lpq = lpq_head.arrival < caq_head.arrival
        cmd = lpq_head if use_lpq else caq_head
        if cmd is None:
            return None, None
        return self.dram.earliest_issue_cycle(cmd), cmd

    def note_wait_refusal(self, cmd: MemoryCommand, now: int) -> None:
        """Replicate the first refused ``try_issue`` of a wait window.

        A per-cycle loop retries the refused head every wait cycle; the
        only side effect of those refusals is the Figure-13
        delayed-regular count, and it can fire only on the *first* wait
        cycle (the bank hold that sets ``blocked_by`` never appears
        mid-wait — ``held_until`` is frozen until the next issue).  The
        event-driven loop calls this once per fast-forward jump with
        the first skipped cycle.
        """
        if cmd.is_ms_prefetch or cmd.uid in self._delayed_counted:
            return
        if self.dram.bank_holder(cmd.line, now) is Provenance.MS_PREFETCH:
            self._delayed_counted.add(cmd.uid)
            self.stats.bump("delayed_regular")

    def _deliver_completions(self, now: int) -> None:
        completions = self._completions
        values = self._stat_values
        while completions and completions[0][0] <= now:
            _, _, cmd = heapq.heappop(completions)
            if cmd.is_ms_prefetch:
                self.ms.notify_complete(cmd)
            elif cmd.is_read:
                latency = now - cmd.arrival
                k_sum, k_cnt, k_max, k_hist = _LAT_KEYS[cmd.provenance]
                values[k_sum] += latency  # lint: stats-dynamic
                values[k_cnt] += 1  # lint: stats-dynamic
                if latency > values.get(k_max, 0):
                    values[k_max] = latency  # lint: stats-dynamic
                # log2-bucketed histogram: bucket b counts latencies in
                # [2^b, 2^(b+1)); bucket 0 holds 0- and 1-cycle responses
                values[k_hist + str(max(latency, 1).bit_length() - 1)] += 1  # lint: stats-dynamic
                if self.on_read_complete is not None:
                    self.on_read_complete(cmd, now)

    def _respond_at(self, cmd: MemoryCommand, when: int) -> None:
        heapq.heappush(self._completions, (when, cmd.uid, cmd))

    def _merge_ready(self, cmd: MemoryCommand) -> None:
        """A read merged with an in-flight prefetch got its data."""
        self.stats.bump("merged_responses")
        self._respond_at(cmd, self._now + self.config.overhead_mc_cycles)

    # -- Final Scheduler ------------------------------------------------
    def _final_scheduler(self, now: int) -> None:
        ms = self.ms
        caq_items = self._caq_items
        # Second Prefetch Buffer check: the head of the CAQ may have been
        # covered by a prefetch that completed while it sat in the queue.
        while caq_items:
            head = caq_items[0]
            if not head.is_read:
                break
            if ms.read_lookup(head.line):
                self.caq.pop()
                self.stats.bump("pb_hits_caq")
                self.stats.bump(f"pb_hits_{head.provenance.value}")
                self._respond_at(
                    head,
                    now
                    + self.config.pb_hit_latency_mc
                    + self.config.overhead_mc_cycles,
                )
            elif ms.try_merge(head):
                self.caq.pop()
                self.stats.bump("pb_merges_caq")
                self.stats.bump(f"pb_merges_{head.provenance.value}")
            else:
                break

        lpq = ms.lpq
        caq_head = caq_items[0] if caq_items else None
        lpq_items = self._lpq_items
        lpq_head = lpq_items[0] if lpq_items else None
        if caq_head is None and lpq_head is None:
            return

        use_lpq = False
        if ms.enabled and lpq_head is not None:
            scheduler = ms.scheduler
            caq_len = len(caq_items)
            # reorder_has_issuable is only read by policy 2, and only
            # when the CAQ is empty — has_issuable scans every reorder
            # candidate against DRAM timing, so compute it lazily
            has_issuable = False
            if caq_len == 0 and scheduler.policy == 2:
                drain = (
                    len(self.queues.writes)
                    >= self.config.write_drain_threshold
                )
                has_issuable = Scheduler.has_issuable(
                    self.queues.candidates(drain), self.dram, now
                )
            view = SchedulerView(
                caq_len=caq_len,
                caq_head_arrival=caq_head.arrival if caq_head else None,
                reorder_empty=not (self._rq_items or self._wq_items),
                reorder_has_issuable=has_issuable,
                lpq_len=len(lpq_items),
                lpq_full=len(lpq_items) >= lpq.depth,
                lpq_head_arrival=lpq_head.arrival,
            )
            use_lpq = scheduler.allows_lpq(view)

        source = lpq if use_lpq else self.caq
        cmd = source.head()
        if cmd is None:
            return
        result = self.dram.try_issue(cmd, now)
        if result.accepted:
            source.pop()
            self.scheduler.notify_issue(cmd, self.dram)
            self._respond_at(cmd, result.completion + self.config.overhead_mc_cycles)
            if cmd.is_write:
                count = self._pending_write_lines.get(cmd.line, 0)
                if count <= 1:
                    self._pending_write_lines.pop(cmd.line, None)
                else:
                    self._pending_write_lines[cmd.line] = count - 1
            if cmd.is_ms_prefetch:
                self.ms.notify_issue(cmd)
                self._stat_values["issued_prefetch"] += 1
            else:
                self._stat_values["issued_regular"] += 1
                self._delayed_counted.discard(cmd.uid)
                self._conflict_counted.discard(cmd.uid)
        elif (
            result.blocked_by is Provenance.MS_PREFETCH
            and not cmd.is_ms_prefetch
            and cmd.uid not in self._delayed_counted
        ):
            # Figure 13: a regular command delayed by a memory-side prefetch.
            self._delayed_counted.add(cmd.uid)
            self.stats.bump("delayed_regular")

    # -- reorder queues -> CAQ -------------------------------------------
    def _reorder_to_caq(self, now: int) -> None:
        if not (self._rq_items or self._wq_items):
            return

        # Adaptive Scheduling feedback: the oldest read being held off the
        # CAQ by a bank occupied by an in-flight prefetch is a conflict.
        head_read = self.queues.reads.head()
        if (
            self.ms.enabled
            and head_read is not None
            and head_read.uid not in self._conflict_counted
            and self.dram.bank_holder(head_read.line, now) is Provenance.MS_PREFETCH
        ):
            self._conflict_counted.add(head_read.uid)
            self.ms.scheduler.record_conflict()

        if self.caq.full:
            return
        drain = len(self.queues.writes) >= self.config.write_drain_threshold
        candidates = self.queues.candidates(drain)
        cmd = self.scheduler.select(candidates, self.dram, now)
        if cmd is None:
            return
        self.queues.remove(cmd)
        if cmd.is_read:
            if self._pending_write_lines.get(cmd.line, 0) > 0:
                # read-after-write hazard: the freshest data for this
                # line sits in the write queue — forward it
                self.stats.bump("raw_forwards")
                self._respond_at(
                    cmd, now + self.config.overhead_mc_cycles
                )
                return
            if self.ms.read_lookup(cmd.line):
                # First Prefetch Buffer check: serve the read without DRAM.
                self.stats.bump("pb_hits_pre_caq")
                self.stats.bump(f"pb_hits_{cmd.provenance.value}")
                self._respond_at(
                    cmd,
                    now
                    + self.config.pb_hit_latency_mc
                    + self.config.overhead_mc_cycles,
                )
                return
            if self.ms.try_merge(cmd):
                self.stats.bump("pb_merges_pre_caq")
                self.stats.bump(f"pb_merges_{cmd.provenance.value}")
                return
        self.caq.push(cmd)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """Nothing queued or in flight anywhere (LPQ included)."""
        return (
            not self._completions
            and self.queues.empty
            and self.caq.empty
            and len(self.ms.lpq) == 0
        )

    @property
    def pb_hits(self) -> float:
        return self.stats["pb_hits_pre_caq"] + self.stats["pb_hits_caq"]
