"""The memoryless (first-ready) scheduler.

Picks the oldest command that can start immediately — preferring open-row
hits — and falls back to the oldest command when nothing is ready.  It
exploits the current DRAM state but keeps no history of past decisions,
hence "memoryless" (Hur & Lin, MICRO'04 terminology).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import MemoryCommand
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice


class MemorylessScheduler(Scheduler):
    """First-ready, row-hit-first selection."""

    def select(
        self,
        candidates: List[MemoryCommand],
        dram: DRAMDevice,
        now: int,
    ) -> Optional[MemoryCommand]:
        if not candidates:
            return None
        best: Optional[MemoryCommand] = None
        best_key = None
        for cmd in candidates:
            ready = dram.ready_now(cmd, now)
            row_hit = ready and dram.is_row_hit(cmd.line)
            # smaller key wins: ready first, then row hits, then age
            key = (not ready, not row_hit, cmd.arrival, cmd.uid)
            if best_key is None or key < best_key:
                best, best_key = cmd, key
        return best
