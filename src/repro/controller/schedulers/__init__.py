"""Reorder-queue schedulers: in-order, memoryless, and AHB.

These are the three schedulers of the paper's Section 5.3 interaction
study.  A scheduler picks which reorder-queue command advances into the
CAQ each cycle; better schedulers extract more DRAM bandwidth, which in
turn raises the headroom the prefetcher can exploit.
"""

from repro.controller.schedulers.ahb import AHBScheduler
from repro.controller.schedulers.base import Scheduler
from repro.controller.schedulers.in_order import InOrderScheduler
from repro.controller.schedulers.memoryless import MemorylessScheduler


def build_scheduler(name: str) -> Scheduler:
    """Factory for the scheduler named in ``ControllerConfig.scheduler``."""
    if name == "in_order":
        return InOrderScheduler()
    if name == "memoryless":
        return MemorylessScheduler()
    if name == "ahb":
        return AHBScheduler()
    raise ValueError(f"unknown scheduler {name!r}")


__all__ = [
    "AHBScheduler",
    "InOrderScheduler",
    "MemorylessScheduler",
    "Scheduler",
    "build_scheduler",
]
