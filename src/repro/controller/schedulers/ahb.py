"""Adaptive History-Based (AHB) scheduler — simplified.

The paper schedules with the AHB scheduler of Hur & Lin (MICRO'04),
which scores candidate commands using a history of recently issued
commands so that successive commands avoid resource conflicts (same
bank/rank too soon) and match the workload's read/write mix.  The full
AHB uses offline-derived history FSMs; this implementation keeps the
two properties that matter for delivered bandwidth — conflict avoidance
via issue history and read/write burst grouping — with a transparent
scoring function.  Section 5.3's required ordering (AHB >= memoryless >
in-order bandwidth) holds by construction: AHB is first-ready scheduling
plus history-aware tie-breaking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.types import CommandKind, MemoryCommand
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice


class AHBScheduler(Scheduler):
    """First-ready scheduling with bank-history and burst-grouping bias."""

    HISTORY = 4  # recently issued commands remembered

    def __init__(self) -> None:
        self._recent_banks: Deque[int] = deque(maxlen=self.HISTORY)
        self._last_kind: Optional[CommandKind] = None

    def select(
        self,
        candidates: List[MemoryCommand],
        dram: DRAMDevice,
        now: int,
    ) -> Optional[MemoryCommand]:
        if not candidates:
            return None
        best: Optional[MemoryCommand] = None
        best_key: Optional[Tuple] = None
        for cmd in candidates:
            bank, _ = dram.locate(cmd.line)
            ready = dram.ready_now(cmd, now)
            score = 0
            if ready:
                score += 8
            if ready and dram.is_row_hit(cmd.line):
                score += 4
            if bank not in self._recent_banks:
                score += 2  # spread across banks: hides tRC behind others
            if self._last_kind is not None and cmd.kind is self._last_kind:
                score += 1  # group reads with reads: fewer bus turnarounds
            key = (-score, cmd.arrival, cmd.uid)
            if best_key is None or key < best_key:
                best, best_key = cmd, key
        return best

    def notify_issue(self, cmd: MemoryCommand, dram: DRAMDevice) -> None:
        bank, _ = dram.locate(cmd.line)
        self._recent_banks.append(bank)
        self._last_kind = cmd.kind
