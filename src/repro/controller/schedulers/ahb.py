"""Adaptive History-Based (AHB) scheduler — simplified.

The paper schedules with the AHB scheduler of Hur & Lin (MICRO'04),
which scores candidate commands using a history of recently issued
commands so that successive commands avoid resource conflicts (same
bank/rank too soon) and match the workload's read/write mix.  The full
AHB uses offline-derived history FSMs; this implementation keeps the
two properties that matter for delivered bandwidth — conflict avoidance
via issue history and read/write burst grouping — with a transparent
scoring function.  Section 5.3's required ordering (AHB >= memoryless >
in-order bandwidth) holds by construction: AHB is first-ready scheduling
plus history-aware tie-breaking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.types import CommandKind, MemoryCommand
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice


class AHBScheduler(Scheduler):
    """First-ready scheduling with bank-history and burst-grouping bias."""

    HISTORY = 4  # recently issued commands remembered

    def __init__(self) -> None:
        self._recent_banks: Deque[int] = deque(maxlen=self.HISTORY)
        self._last_kind: Optional[CommandKind] = None

    def select(
        self,
        candidates: List[MemoryCommand],
        dram: DRAMDevice,
        now: int,
    ) -> Optional[MemoryCommand]:
        if not candidates:
            return None
        # Hot loop: runs once per MC cycle over every reorder-queue
        # command, so the bank timing probes (ready_now / is_row_hit)
        # are inlined against the bank fields with hoisted locals.
        amap = dram.amap
        nbanks = amap.total_banks
        row_lines = amap.row_lines
        banks = dram.banks
        t = dram.timing
        t_rcd = t.t_rcd
        ready_limit = now + t_rcd + t.t_rp
        recent = self._recent_banks
        last_kind = self._last_kind
        best: Optional[MemoryCommand] = None
        best_score = -1
        best_arrival = 0
        best_uid = 0
        for cmd in candidates:
            line = cmd.line
            bank_i = line % nbanks
            bank = banks[bank_i]
            score = 0
            if now >= bank.held_until:
                # ready_now: the CAS could start within tRCD + tRP
                row = (line // nbanks) // row_lines
                open_row = bank.open_row
                if open_row == row:
                    start = bank.cas_ready
                    if start < now:
                        start = now
                    if start <= ready_limit:
                        score = 12  # ready (8) + row hit (4)
                else:
                    if open_row is None:
                        act = bank.act_ready
                        if act < now:
                            act = now
                    else:
                        act = bank.pre_ready
                        if act < now:
                            act = now
                        act += t.t_rp
                        if act < bank.act_ready:
                            act = bank.act_ready
                    if act + t_rcd <= ready_limit:
                        score = 8  # ready, but opens a new row
            if bank_i not in recent:
                score += 2  # spread across banks: hides tRC behind others
            if last_kind is not None and cmd.kind is last_kind:
                score += 1  # group reads with reads: fewer bus turnarounds
            if score > best_score or (
                score == best_score
                and (cmd.arrival, cmd.uid) < (best_arrival, best_uid)
            ):
                best = cmd
                best_score = score
                best_arrival = cmd.arrival
                best_uid = cmd.uid
        return best

    def notify_issue(self, cmd: MemoryCommand, dram: DRAMDevice) -> None:
        bank, _ = dram.locate(cmd.line)
        self._recent_banks.append(bank)
        self._last_kind = cmd.kind
