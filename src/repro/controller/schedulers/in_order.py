"""The in-order scheduler: strict arrival order, no reordering.

The weakest scheduler of the Section 5.3 study.  Picking strictly by
arrival regardless of bank readiness forfeits bank-level parallelism,
so delivered DRAM bandwidth drops — and with it, prefetching headroom.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import MemoryCommand
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice


class InOrderScheduler(Scheduler):
    """Always selects the oldest command, ready or not."""

    def select(
        self,
        candidates: List[MemoryCommand],
        dram: DRAMDevice,
        now: int,
    ) -> Optional[MemoryCommand]:
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.arrival, c.uid))
