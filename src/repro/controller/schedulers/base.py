"""Scheduler interface."""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import MemoryCommand
from repro.dram.device import DRAMDevice


class Scheduler:
    """Chooses which reorder-queue command enters the CAQ next.

    ``select`` receives the candidate commands (already filtered for
    write-drain policy by the controller), the DRAM device for readiness
    queries, and the current cycle; it returns the chosen command or
    None to idle.  ``notify_issue`` lets history-based schedulers learn
    what actually went to DRAM.
    """

    def select(
        self,
        candidates: List[MemoryCommand],
        dram: DRAMDevice,
        now: int,
    ) -> Optional[MemoryCommand]:
        raise NotImplementedError

    def notify_issue(self, cmd: MemoryCommand, dram: DRAMDevice) -> None:
        """Observe a command issued to DRAM (optional)."""

    @staticmethod
    def has_issuable(
        candidates: List[MemoryCommand], dram: DRAMDevice, now: int
    ) -> bool:
        """Does any candidate face no memory-system conflict right now?

        This is the predicate behind Adaptive Scheduling policy 2
        ("the Reorder queues have no issuable commands").
        """
        return any(dram.ready_now(cmd, now) for cmd in candidates)
