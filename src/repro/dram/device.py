"""The DRAM device: address mapping, bank array, and the data bus.

The controller's Final Scheduler calls :meth:`DRAMDevice.try_issue` with
one :class:`~repro.common.types.MemoryCommand` per MC cycle at most; the
device either accepts it — reserving the target bank and a data-bus slot
and returning the completion cycle — or reports why it cannot start yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.config import DRAMConfig
from repro.common.stats import Stats
from repro.common.types import MemoryCommand, Provenance
from repro.dram.bank import Bank
from repro.dram.power import DRAMPowerModel
from repro.telemetry.events import DramCommand
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True, slots=True)
class AddressMap:
    """Line address -> (bank index, row) mapping.

    Consecutive lines interleave across all banks (banks of rank 0, then
    rank 1, ...) so unit-stride streams spread over the whole bank array;
    the row number advances once per full sweep of ``row_lines`` in each
    bank.  This is the standard line-interleaved mapping for streaming
    throughput.
    """

    total_banks: int
    row_lines: int

    def locate(self, line: int) -> Tuple[int, int]:
        """Return (bank, row) for a line address.

        Within a bank, each row holds ``row_lines`` of that bank's lines,
        so a sequential stream stays row-open in every bank for
        ``row_lines * total_banks`` consecutive line addresses.
        """
        bank = line % self.total_banks
        row = (line // self.total_banks) // self.row_lines
        return bank, row


@dataclass(slots=True)
class IssueResult:
    """Outcome of a try_issue call (slotted: one is built per attempt)."""

    accepted: bool
    completion: int = 0  # cycle at which data transfer finishes
    blocked_by: Optional[Provenance] = None  # who holds the bank, if blocked


class DRAMDevice:
    """One memory channel: an array of banks sharing one data bus."""

    #: maximum cycles of future bus reservation allowed at issue; keeps
    #: the FIFO CAQ from burying the bus arbitrarily deep.
    MAX_BUS_LEAD = 64

    def __init__(
        self,
        config: DRAMConfig,
        power: Optional[DRAMPowerModel] = None,
        tracer: Optional[Tracer] = None,
    ):
        config.validate()
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timing = config.timing
        self.amap = AddressMap(config.total_banks, config.row_lines)
        closed = config.page_policy == "closed"
        self.banks: List[Bank] = [
            Bank(config.timing, auto_precharge=closed)
            for _ in range(config.total_banks)
        ]
        self.bus_free_at = 0
        self.power = power
        # staggered per-rank refresh deadlines (0 = refresh disabled)
        if config.timing.t_refi:
            step = config.timing.t_refi // max(config.ranks, 1)
            self._next_refresh = [
                config.timing.t_refi + r * step for r in range(config.ranks)
            ]
            self._refresh_horizon = min(self._next_refresh)
        else:
            self._next_refresh = []
            self._refresh_horizon = None
        self.stats = Stats()
        # hot path: try_issue adds straight into the counter mapping
        self._stat_values = self.stats.raw()

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------
    def _apply_refreshes(self, now: int) -> None:
        """Catch up on any refresh deadlines that have passed.

        Each due refresh blocks every bank of its rank for tRFC starting
        at its deadline.  Applied lazily from try_issue, which is exact
        enough: a refresh only matters when a command wants the rank.
        """
        horizon = self._refresh_horizon
        if horizon is None or now < horizon:
            return  # cheap path: no deadline has passed since last call
        t = self.timing
        bpr = self.config.banks_per_rank
        for rank, deadline in enumerate(self._next_refresh):
            while deadline <= now:
                for bank in self.banks[rank * bpr : (rank + 1) * bpr]:
                    bank.block_until(deadline + t.t_rfc)
                deadline += t.t_refi
                self.stats.bump("refreshes")
            self._next_refresh[rank] = deadline
        self._refresh_horizon = min(self._next_refresh)

    def catch_up_refreshes(self, now: int) -> None:
        """Apply every refresh deadline up to ``now`` in one call.

        Refresh application is lazy and order-insensitive (pure
        ``max`` catch-ups plus a deadline-driven counter), so one call
        here is exactly equivalent to the per-cycle ``try_issue``
        attempts a literal loop would have made across a fast-forward
        window.  The event-driven loop calls this when it jumps over a
        window in which a CAQ/LPQ head was waiting on DRAM timing.
        """
        self._apply_refreshes(now)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def locate(self, line: int) -> Tuple[int, int]:
        return self.amap.locate(line)

    def is_row_hit(self, line: int) -> bool:
        """Would this command hit an open row right now?"""
        bank, row = self.amap.locate(line)
        return self.banks[bank].row_hit(row)

    def bank_holder(self, line: int, now: int) -> Optional[Provenance]:
        """Provenance of the in-flight command holding the line's bank."""
        bank, _ = self.amap.locate(line)
        return self.banks[bank].holder_at(now)

    def bank_busy(self, line: int, now: int) -> bool:
        bank, _ = self.amap.locate(line)
        return self.banks[bank].busy_at(now)

    def ready_now(self, cmd: MemoryCommand, now: int) -> bool:
        """Could this command start its column access without waiting on
        the bank (row open or immediately openable) and find bus room?"""
        bank_i, row = self.amap.locate(cmd.line)
        bank = self.banks[bank_i]
        if bank.busy_at(now):
            return False
        start = bank.access_start(row, now)
        return start <= now + self.timing.t_rcd + self.timing.t_rp

    def earliest_issue_cycle(self, cmd: MemoryCommand) -> int:
        """Earliest cycle :meth:`try_issue` could accept ``cmd``.

        Pure query used by the event-driven loop: acceptance requires
        the target bank to have released its in-flight hold and the
        data bus to be within :data:`MAX_BUS_LEAD` of reservation.
        (Refresh blocks delay the *access*, not acceptance — they are
        folded into the completion time by ``reserve``.)  The returned
        cycle may be in the past, meaning the command is issuable now.
        """
        bank = self.banks[cmd.line % self.amap.total_banks]
        return max(bank.held_until, self.bus_free_at - self.MAX_BUS_LEAD)

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------
    def try_issue(self, cmd: MemoryCommand, now: int) -> IssueResult:
        """Attempt to start ``cmd`` at cycle ``now``.

        The command is rejected when the target bank is still occupied by
        an earlier in-flight access or when the data bus is reserved too
        far into the future; otherwise the bank and a bus slot are
        reserved and the completion cycle is returned.
        """
        horizon = self._refresh_horizon
        if horizon is not None and now >= horizon:
            self._apply_refreshes(now)
        amap = self.amap
        line = cmd.line
        bank_i = line % amap.total_banks
        bank = self.banks[bank_i]
        if now < bank.held_until:
            return IssueResult(False, blocked_by=bank.holder_at(now))
        if self.bus_free_at > now + self.MAX_BUS_LEAD:
            return IssueResult(False)

        row = (line // amap.total_banks) // amap.row_lines
        is_write = cmd.is_write
        cas_at, activated = bank.reserve(row, now, is_write)
        t = self.timing
        lead = t.t_wl if is_write else t.t_cl
        data_start = max(cas_at + lead, self.bus_free_at)
        completion = data_start + t.burst_cycles
        self.bus_free_at = completion
        bank.hold(cmd.provenance, completion)

        values = self._stat_values
        values["issued"] += 1
        values["issued_writes" if is_write else "issued_reads"] += 1
        if activated:
            values["activations"] += 1
        else:
            values["row_hits"] += 1
        if self.power is not None:
            self.power.record_access(cmd.is_write, activated)
        if self.tracer.enabled:
            self.tracer.emit(
                DramCommand(
                    t=now,
                    line=cmd.line,
                    bank=bank_i,
                    row=row,
                    is_write=cmd.is_write,
                    provenance=cmd.provenance.value,
                    row_hit=not activated,
                    completion=completion,
                )
            )
        return IssueResult(True, completion=completion)

    # ------------------------------------------------------------------
    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed cycles the data bus transferred data."""
        if elapsed <= 0:
            return 0.0
        busy = self.stats["issued"] * self.timing.burst_cycles
        return min(1.0, busy / elapsed)
