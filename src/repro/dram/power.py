"""Current-based DRAM power/energy accounting (Memsim-style).

The paper integrates its Power5+ simulator with Memsim, which models
DRAM power from command activity using Micron's IDD methodology.  This
model does the same at the granularity our device simulates: an energy
quantum per activate/precharge pair, per read burst and per write burst,
plus background power that depends on whether any bank in a rank holds
an open row (active standby vs. precharged standby) and a refresh adder.

Energy is reported in microjoules and average power in milliwatts, both
over the simulated wall-clock implied by the MC cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DRAMConfig, DRAMPowerConfig


@dataclass(slots=True)
class PowerReport:
    """Summary produced at the end of a run."""

    elapsed_ns: float
    energy_uj: float
    avg_power_mw: float
    activate_energy_uj: float
    burst_energy_uj: float
    background_energy_uj: float

    def describe(self) -> str:
        return (
            f"E={self.energy_uj:.1f}uJ  P={self.avg_power_mw:.1f}mW  "
            f"(act {self.activate_energy_uj:.1f} + burst "
            f"{self.burst_energy_uj:.1f} + bg {self.background_energy_uj:.1f})"
        )


class DRAMPowerModel:
    """Accumulates DRAM command activity and converts it to energy.

    The device calls :meth:`record_access` on every issued command; the
    system calls :meth:`finalize` once with the total elapsed MC cycles.
    Background energy assumes ranks sit in active standby whenever the
    device has been recently used — a deliberate simplification that,
    like Memsim's accounting, makes background energy proportional to
    runtime (the effect behind the paper's energy-reduction results).
    """

    def __init__(self, dram: DRAMConfig, power: DRAMPowerConfig) -> None:
        power.validate()
        self.dram = dram
        self.cfg = power
        self.activations = 0
        self.read_bursts = 0
        self.write_bursts = 0

    def record_access(self, is_write: bool, activated: bool) -> None:
        """Account one issued line transfer."""
        if activated:
            self.activations += 1
        if is_write:
            self.write_bursts += 1
        else:
            self.read_bursts += 1

    def snapshot(self) -> dict:
        """Current activity counters (telemetry probes diff these)."""
        return {
            "activations": self.activations,
            "read_bursts": self.read_bursts,
            "write_bursts": self.write_bursts,
        }

    def interval_energy_uj(
        self,
        activations: int,
        read_bursts: int,
        write_bursts: int,
        elapsed_mc_cycles: int,
    ) -> float:
        """Energy in microjoules of an activity interval.

        Used both for the end-of-run report (with the run totals) and by
        per-epoch telemetry probes (with counter deltas), so interval
        power series sum back to the final report exactly.
        """
        t_ns = elapsed_mc_cycles * self.dram.timing.t_ck_ns
        act_uj = activations * self.cfg.e_activate_nj * 1e-3
        burst_uj = (
            read_bursts * self.cfg.e_read_nj + write_bursts * self.cfg.e_write_nj
        ) * 1e-3
        bg_mw = self.dram.ranks * (
            self.cfg.p_background_active_mw + self.cfg.p_refresh_mw
        )
        bg_uj = bg_mw * t_ns * 1e-6  # mW * ns = pJ; pJ -> uJ is 1e-6
        return act_uj + burst_uj + bg_uj

    def finalize(self, elapsed_mc_cycles: int) -> PowerReport:
        """Produce the energy/power report for a run of the given length."""
        t_ns = elapsed_mc_cycles * self.dram.timing.t_ck_ns
        act_uj = self.activations * self.cfg.e_activate_nj * 1e-3
        burst_uj = (
            self.read_bursts * self.cfg.e_read_nj
            + self.write_bursts * self.cfg.e_write_nj
        ) * 1e-3
        bg_mw = self.dram.ranks * (
            self.cfg.p_background_active_mw + self.cfg.p_refresh_mw
        )
        bg_uj = bg_mw * t_ns * 1e-6  # mW * ns = pJ; pJ -> uJ is 1e-6
        total_uj = act_uj + burst_uj + bg_uj
        # uJ / ns = kW; kW -> mW is 1e6
        avg_mw = (total_uj / t_ns) * 1e6 if t_ns > 0 else 0.0
        return PowerReport(
            elapsed_ns=t_ns,
            energy_uj=total_uj,
            avg_power_mw=avg_mw,
            activate_energy_uj=act_uj,
            burst_energy_uj=burst_uj,
            background_energy_uj=bg_uj,
        )
