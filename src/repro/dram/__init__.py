"""DDR2 DRAM model: per-bank timing state machines plus a power model.

The model is *transaction level with bank timing*: the memory controller
issues whole line reads/writes; the device decomposes each into the
implied precharge/activate/CAS sequence, enforces DDR2 timing per bank
and data-bus occupancy per channel, and returns the completion cycle.
This captures everything the paper's mechanisms react to — row hits vs.
conflicts, bank occupancy by in-flight prefetches, and data-bus pressure
— without simulating individual DRAM commands cycle by cycle.
"""

from repro.dram.bank import Bank
from repro.dram.device import AddressMap, DRAMDevice, IssueResult
from repro.dram.power import DRAMPowerModel

__all__ = ["AddressMap", "Bank", "DRAMDevice", "DRAMPowerModel", "IssueResult"]
