"""A single DRAM bank's timing state.

The bank tracks its open row and the earliest cycles at which the next
column access or the next activate may start, honouring tRCD, tCL, tRP,
tRAS, tRC and tWR of :class:`~repro.common.config.DRAMTimingConfig`.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import DRAMTimingConfig


class Bank:
    """Timing state machine for one DRAM bank.

    ``auto_precharge=True`` models a closed-page policy: the row is
    closed after each access, so subsequent accesses always pay tRCD
    (but never a row-conflict precharge on the critical path).
    """

    __slots__ = (
        "timing",
        "auto_precharge",
        "open_row",
        "cas_ready",
        "pre_ready",
        "act_ready",
        "holder",
        "held_until",
    )

    def __init__(self, timing: DRAMTimingConfig, auto_precharge: bool = False) -> None:
        self.timing = timing
        self.auto_precharge = auto_precharge
        self.open_row: Optional[int] = None
        #: earliest cycle a CAS to the open row may start
        self.cas_ready: int = 0
        #: earliest cycle a precharge may start (tRAS / tWR constraints)
        self.pre_ready: int = 0
        #: earliest cycle an activate may start (tRC / tRP constraints)
        self.act_ready: int = 0
        #: provenance marker of the in-flight command holding this bank
        self.holder = None
        #: cycle until which `holder` is considered to occupy the bank
        self.held_until: int = 0

    def row_hit(self, row: int) -> bool:
        """Would an access to ``row`` hit the open row?"""
        return self.open_row == row

    def access_start(self, row: int, now: int) -> int:
        """Earliest cycle the CAS for ``row`` could start if issued now.

        Pure query — does not change state.
        """
        if self.open_row == row:
            return max(now, self.cas_ready)
        if self.open_row is None:
            act_at = max(now, self.act_ready)
            return act_at + self.timing.t_rcd
        # row conflict: precharge, then activate, then CAS
        pre_at = max(now, self.pre_ready)
        act_at = max(pre_at + self.timing.t_rp, self.act_ready)
        return act_at + self.timing.t_rcd

    def reserve(self, row: int, now: int, is_write: bool) -> tuple:
        """Commit an access to ``row`` starting no earlier than ``now``.

        Returns ``(cas_at, activated)`` where ``cas_at`` is the cycle the
        column access starts and ``activated`` says whether an
        activate/precharge pair was spent (for the power model).
        """
        t = self.timing
        activated = False
        if self.open_row == row:
            cas_at = max(now, self.cas_ready)
        else:
            if self.open_row is None:
                act_at = max(now, self.act_ready)
            else:
                pre_at = max(now, self.pre_ready)
                act_at = max(pre_at + t.t_rp, self.act_ready)
            cas_at = act_at + t.t_rcd
            activated = True
            self.open_row = row
            self.act_ready = act_at + t.t_rc
            self.pre_ready = act_at + t.t_ras
        # Data transfer occupies the column path for the burst; tCCD
        # gates back-to-back CAS commands.
        burst_end = cas_at + (t.t_wl if is_write else t.t_cl) + t.burst_cycles
        self.cas_ready = max(cas_at + max(t.t_ccd, t.burst_cycles), self.cas_ready)
        if is_write:
            # a write pushes out the earliest precharge by write recovery
            self.pre_ready = max(self.pre_ready, burst_end + t.t_wr)
        else:
            self.pre_ready = max(self.pre_ready, burst_end)
        if self.auto_precharge:
            # closed page: the precharge is folded in; the next activate
            # may start once the (auto-)precharge completes
            self.act_ready = max(self.act_ready, self.pre_ready + t.t_rp)
            self.open_row = None
        return cas_at, activated

    def block_until(self, until: int) -> None:
        """Refresh support: the bank accepts nothing before ``until``."""
        self.cas_ready = max(self.cas_ready, until)
        self.act_ready = max(self.act_ready, until)
        self.pre_ready = max(self.pre_ready, until)
        self.open_row = None  # refresh closes all rows

    def hold(self, provenance, until: int) -> None:
        """Mark the bank as occupied by a command until ``until``."""
        self.holder = provenance
        self.held_until = until

    def holder_at(self, now: int):
        """Provenance of the command holding the bank now, or None."""
        if self.holder is not None and now < self.held_until:
            return self.holder
        return None

    def busy_at(self, now: int) -> bool:
        """Is the bank mid-access at cycle ``now``?"""
        return now < self.held_until
