"""Scenario diversity: external trace loaders + adversarial fuzzing.

The evaluation otherwise rests entirely on the synthetic generator
(:mod:`repro.workloads.synthetic`); this package opens the workload
axis in both directions (docs/scenarios.md):

* :mod:`~repro.scenarios.loaders` — streaming loaders for external
  trace formats (ChampSim-style line-address text, generic gzipped
  ``addr,rw[,tid]`` CSV), normalising byte addresses to the internal
  ``(gap, line, is_write)`` records with configurable line-size
  rebasing;
* :mod:`~repro.scenarios.calibrate` — per-trace fast-model calibration
  through the existing :class:`~repro.fastsim.gate.FidelityGate`;
* :mod:`~repro.scenarios.fuzzer` — an adversarial search over the
  :class:`~repro.workloads.synthetic.StreamWorkload` parameter space
  for patterns where ASD mispredicts, executed through the ordinary
  sweep engine so every candidate dedupes into the result store.
"""

from repro.scenarios.calibrate import calibrate_trace
from repro.scenarios.fuzzer import FuzzReport, FuzzResult, run_fuzz
from repro.scenarios.loaders import (
    convert_trace,
    detect_format,
    iter_champsim,
    iter_csv,
    load_external,
)
from repro.scenarios.objectives import OBJECTIVES, Objective
from repro.scenarios.space import FuzzSpace

__all__ = [
    "FuzzReport",
    "FuzzResult",
    "FuzzSpace",
    "OBJECTIVES",
    "Objective",
    "calibrate_trace",
    "convert_trace",
    "detect_format",
    "iter_champsim",
    "iter_csv",
    "load_external",
    "run_fuzz",
]
