"""Streaming loaders for external memory-trace formats.

Real traces record *byte* addresses at some point of the memory
hierarchy; the simulator consumes line-granularity
``(gap, line, is_write)`` records (:mod:`repro.workloads.trace`).  The
loaders here normalise between the two:

* **line-size rebasing** — byte addresses are right-shifted by
  ``log2(line_size)``; traces captured at a different line size than
  the simulated 128-byte lines are rebased by choosing ``line_size``
  accordingly;
* **gap derivation** — formats carrying instruction counts derive each
  record's gap from consecutive counts; formats without them use a
  configurable constant ``default_gap``;
* **streaming** — every loader is a generator over one input line at a
  time and :func:`convert_trace` writes records as they are produced,
  so multi-GB inputs convert in constant memory.  Paths ending ``.gz``
  are decompressed on the fly.

Two formats are supported (docs/scenarios.md has examples):

``champsim``
    Whitespace-separated text, one access per line:
    ``[instr_count] address type`` where ``type`` is one of
    R/W/L/S/LOAD/STORE/READ/WRITE/0/1 (case-insensitive) and addresses
    are decimal or hex (``0x`` prefix or any hex digit).  With the
    optional leading instruction count, gaps are derived from the
    deltas.

``csv``
    Comma-separated ``addr,rw[,tid]`` with an optional header row.
    The ``tid`` column, when present, can split the file into per-
    thread traces (:func:`split_threads`) for true SMT replay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.workloads.trace import RawRecord, Trace, open_text

#: rw-column tokens meaning "write" (lower-cased before lookup).
_WRITE_TOKENS = {"w", "s", "1", "write", "store", "wr", "st"}
#: rw-column tokens meaning "read".
_READ_TOKENS = {"r", "l", "0", "read", "load", "rd", "ld"}

#: Default instructions between accesses when the format carries none.
DEFAULT_GAP = 20
#: Default byte line size of external traces (the common 64B line).
DEFAULT_LINE_SIZE = 64

#: An external record mid-normalisation: ``(gap, line, is_write, tid)``.
ExternalRecord = Tuple[int, int, bool, int]


def _parse_error(path: str, lineno: int, raw: str, why: str) -> ValueError:
    """A loader error naming the file, line number, and offending text."""
    return ValueError(f"{path}:{lineno}: {why} in {raw.strip()!r}")


def _parse_address(token: str) -> int:
    """Parse a decimal or hex byte address."""
    token = token.strip()
    if token.lower().startswith("0x"):
        return int(token, 16)
    try:
        return int(token, 10)
    except ValueError:
        return int(token, 16)  # bare hex (contains a-f)


def _parse_rw(token: str) -> bool:
    """True for a write, False for a read; raises on anything else."""
    lowered = token.strip().lower()
    if lowered in _WRITE_TOKENS:
        return True
    if lowered in _READ_TOKENS:
        return False
    raise ValueError(f"unknown access type {token.strip()!r}")


def _line_shift(line_size: int) -> int:
    """log2 of the line size; rejects non-powers-of-two."""
    if line_size < 1 or line_size & (line_size - 1):
        raise ValueError(
            f"line_size must be a positive power of two, got {line_size}"
        )
    return line_size.bit_length() - 1


# ----------------------------------------------------------------------
# format iterators
# ----------------------------------------------------------------------
def iter_champsim(
    path: str,
    line_size: int = DEFAULT_LINE_SIZE,
    default_gap: int = DEFAULT_GAP,
) -> Iterator[ExternalRecord]:
    """Stream a ChampSim-style text trace as normalised records.

    Lines are ``address type`` or ``instr_count address type``; blank
    lines and ``#`` comments are skipped.  With instruction counts the
    gap of each access is ``count - previous_count - 1`` (clamped at
    zero: the access itself is one instruction); without them every
    gap is ``default_gap``.
    """
    shift = _line_shift(line_size)
    if default_gap < 0:
        raise ValueError(f"default_gap must be non-negative, got {default_gap}")
    previous_count: Optional[int] = None
    with open_text(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise _parse_error(
                    path, lineno, raw,
                    f"expected '[instr_count] address type', got "
                    f"{len(parts)} fields",
                )
            try:
                if len(parts) == 3:
                    count = int(parts[0], 10)
                    address = _parse_address(parts[1])
                    is_write = _parse_rw(parts[2])
                    if previous_count is None:
                        gap = default_gap
                    elif count < previous_count:
                        raise ValueError(
                            f"instruction count {count} goes backwards"
                        )
                    else:
                        gap = max(0, count - previous_count - 1)
                    previous_count = count
                else:
                    address = _parse_address(parts[0])
                    is_write = _parse_rw(parts[1])
                    gap = default_gap
            except ValueError as exc:
                raise _parse_error(path, lineno, raw, str(exc)) from None
            yield gap, address >> shift, is_write, 0


def iter_csv(
    path: str,
    line_size: int = DEFAULT_LINE_SIZE,
    default_gap: int = DEFAULT_GAP,
) -> Iterator[ExternalRecord]:
    """Stream a generic ``addr,rw[,tid]`` CSV (gzipped or plain).

    A first row whose address column does not parse is treated as a
    header and skipped; every later malformed row is an error naming
    the file, line, and text.
    """
    shift = _line_shift(line_size)
    if default_gap < 0:
        raise ValueError(f"default_gap must be non-negative, got {default_gap}")
    with open_text(path) as handle:
        first_data_row = True
        for lineno, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = [part.strip() for part in stripped.split(",")]
            if len(parts) not in (2, 3):
                raise _parse_error(
                    path, lineno, raw,
                    f"expected 'addr,rw[,tid]', got {len(parts)} columns",
                )
            try:
                address = _parse_address(parts[0])
            except ValueError:
                if first_data_row:  # header row (e.g. "addr,rw,tid")
                    first_data_row = False
                    continue
                raise _parse_error(
                    path, lineno, raw, f"bad address {parts[0]!r}"
                ) from None
            try:
                is_write = _parse_rw(parts[1])
                tid = int(parts[2], 10) if len(parts) == 3 else 0
            except ValueError as exc:
                raise _parse_error(path, lineno, raw, str(exc)) from None
            if tid < 0:
                raise _parse_error(path, lineno, raw, f"negative tid {tid}")
            first_data_row = False
            yield default_gap, address >> shift, is_write, tid


#: format name -> iterator factory.
FORMATS = {
    "champsim": iter_champsim,
    "csv": iter_csv,
}


def detect_format(path: str) -> str:
    """Guess the external format from the file name.

    ``.csv`` / ``.csv.gz`` means CSV; everything else is treated as
    ChampSim-style text (the more permissive format).
    """
    lowered = path.lower()
    if lowered.endswith(".csv") or lowered.endswith(".csv.gz"):
        return "csv"
    return "champsim"


# ----------------------------------------------------------------------
# conversion and materialisation
# ----------------------------------------------------------------------
@dataclass
class ConversionReport:
    """What one :func:`convert_trace` call produced."""

    records: int
    threads: int
    writes: int
    output: str

    def summary(self) -> str:
        """One line for the CLI."""
        share = self.writes / self.records * 100 if self.records else 0.0
        return (
            f"{self.records} records ({self.threads} thread(s), "
            f"{share:.0f}% writes) -> {self.output}"
        )


def convert_trace(
    source: str,
    output: str,
    fmt: Optional[str] = None,
    line_size: int = DEFAULT_LINE_SIZE,
    default_gap: int = DEFAULT_GAP,
    limit: Optional[int] = None,
    name: Optional[str] = None,
) -> ConversionReport:
    """Convert an external trace to the internal format, streaming.

    Records are written to ``output`` (gzipped when it ends ``.gz``)
    as they are parsed — constant memory for multi-GB inputs.  ``fmt``
    defaults to :func:`detect_format`; ``limit`` caps the records
    converted (prefix sampling).  Multi-thread CSVs are merged in file
    order (one controller-visible request stream); use
    :func:`split_threads` for per-thread traces instead.
    """
    fmt = fmt or detect_format(source)
    if fmt not in FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {sorted(FORMATS)}"
        )
    records = 0
    writes = 0
    tids = set()
    # written to a sibling temp path then os.replace-d, so a crashed or
    # limit-interrupted conversion can never leave a torn trace where a
    # sweep's content-addressed loader would pick it up (the suffix is
    # preserved so open_text still gzips ``.gz`` outputs)
    tmp = (output[: -len(".gz")] + ".part.gz") if output.endswith(".gz") \
        else output + ".part"
    with open_text(tmp, "w") as out:
        out.write(f"# trace {name or source} (converted from {fmt})\n")
        for gap, line, is_write, tid in FORMATS[fmt](
            source, line_size=line_size, default_gap=default_gap
        ):
            out.write(f"{gap} {line} {int(is_write)}\n")
            records += 1
            writes += int(is_write)
            tids.add(tid)
            if limit is not None and records >= limit:
                break
    if records == 0:
        os.remove(tmp)
        raise ValueError(f"{source}: no trace records found")
    os.replace(tmp, output)
    return ConversionReport(
        records=records, threads=max(1, len(tids)), writes=writes,
        output=output,
    )


def load_external(
    path: str,
    fmt: Optional[str] = None,
    line_size: int = DEFAULT_LINE_SIZE,
    default_gap: int = DEFAULT_GAP,
    limit: Optional[int] = None,
    name: Optional[str] = None,
) -> Trace:
    """Materialise an external trace as an in-memory :class:`Trace`.

    The convenience path for moderate files and tests;
    :func:`convert_trace` + ``trace:`` benchmark names is the
    streaming path for big ones.
    """
    fmt = fmt or detect_format(path)
    if fmt not in FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {sorted(FORMATS)}"
        )
    records: List[RawRecord] = []
    for gap, line, is_write, _tid in FORMATS[fmt](
        path, line_size=line_size, default_gap=default_gap
    ):
        records.append((gap, line, is_write))
        if limit is not None and len(records) >= limit:
            break
    if not records:
        raise ValueError(f"{path}: no trace records found")
    return Trace(records, name=name or path)


def split_threads(
    records: Iterable[ExternalRecord], name: str = "trace"
) -> Dict[int, Trace]:
    """Per-tid traces from a normalised record stream (SMT replay)."""
    by_tid: Dict[int, List[RawRecord]] = {}
    for gap, line, is_write, tid in records:
        by_tid.setdefault(tid, []).append((gap, line, is_write))
    return {
        tid: Trace(recs, name=f"{name}#t{tid}")
        for tid, recs in sorted(by_tid.items())
    }
