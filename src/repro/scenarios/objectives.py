"""Pluggable fuzz objectives: what "adversarial" means, quantified.

An :class:`Objective` declares which (config, fidelity) cells each
candidate workload must run under and turns the resulting
:class:`~repro.system.results.RunResult` grid into a single score where
**higher = more adversarial**.  Three ship in :data:`OBJECTIVES`:

``waste``
    Minimise the useful-prefetch fraction of PMS — find mixtures where
    ASD keeps prefetching lines nobody reads (the failure mode the
    paper's epoch-adaptive depth exists to avoid).

``regret``
    Maximise the cycle cost of PMS's *adaptive* scheduling relative to
    the best fixed policy (``PMS_POLICY1..5``) — find patterns where
    adapting per-epoch picks worse than any static choice would.

``fidelity``
    Maximise the fast-model-vs-exact relative error (worst gated
    metric) on PMS — find workloads the analytic surrogate models
    badly, feeding the calibration corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from repro.fastsim.gate import GATED_METRICS, metric_value, relative_error
from repro.system.results import RunResult

#: One candidate's evaluated grid: ``(config_name, fidelity) -> result``.
ResultGrid = Mapping[Tuple[str, str], RunResult]

#: Fixed-policy ablations the regret objective races PMS against.
REGRET_POLICIES = tuple(f"PMS_POLICY{k}" for k in range(1, 6))


@dataclass(frozen=True)
class Objective:
    """One way of scoring a candidate workload (higher = worse case)."""

    name: str
    description: str
    #: (config_name, fidelity) cells to evaluate per candidate.
    cells: Tuple[Tuple[str, str], ...]
    #: grid -> adversarial score (higher = more adversarial).
    score: Callable[[ResultGrid], float]
    #: grid -> headline metrics recorded alongside the score.
    metrics: Callable[[ResultGrid], Dict[str, float]]


def _common_metrics(result: RunResult) -> Dict[str, float]:
    """The metrics every fuzz report records for the primary cell."""
    return {
        "cycles": float(result.cycles),
        "ipc": result.ipc,
        "coverage": result.coverage,
        "useful_prefetch_fraction": result.useful_prefetch_fraction,
    }


# ----------------------------------------------------------------------
# waste
# ----------------------------------------------------------------------
#: Small-sample damping of the waste score: a workload that tricks ASD
#: into one useless prefetch is not interesting; one that sustains a
#: stream of them is.  Wasted fraction is scaled by n/(n+20) inserts.
_WASTE_DAMPING = 20.0


def _waste_score(grid: ResultGrid) -> float:
    result = grid[("PMS", "exact")]
    inserts = result.stats.get("pb.inserts", 0)
    if not inserts:
        # ASD issued no prefetches at all: nothing was wasted, however
        # low the fraction reads — don't reward shutting ASD off.
        return 0.0
    damping = inserts / (inserts + _WASTE_DAMPING)
    return (1.0 - result.useful_prefetch_fraction) * damping


def _waste_metrics(grid: ResultGrid) -> Dict[str, float]:
    out = _common_metrics(grid[("PMS", "exact")])
    out["pb_inserts"] = float(grid[("PMS", "exact")].stats.get("pb.inserts", 0))
    return out


# ----------------------------------------------------------------------
# regret
# ----------------------------------------------------------------------
def _regret_score(grid: ResultGrid) -> float:
    adaptive = grid[("PMS", "exact")]
    best_fixed = min(
        grid[(policy, "exact")].cycles for policy in REGRET_POLICIES
    )
    if best_fixed == 0:
        return 0.0
    # percent slowdown of adaptive scheduling vs the best fixed policy;
    # positive means adapting lost to a static choice.
    return (adaptive.cycles / best_fixed - 1.0) * 100.0


def _regret_metrics(grid: ResultGrid) -> Dict[str, float]:
    out = _common_metrics(grid[("PMS", "exact")])
    out["best_fixed_cycles"] = float(min(
        grid[(policy, "exact")].cycles for policy in REGRET_POLICIES
    ))
    return out


# ----------------------------------------------------------------------
# fidelity
# ----------------------------------------------------------------------
def _fidelity_score(grid: ResultGrid) -> float:
    fast = grid[("PMS", "fast")]
    exact = grid[("PMS", "exact")]
    return max(
        relative_error(fast, exact, metric) for metric in GATED_METRICS
    )


def _fidelity_metrics(grid: ResultGrid) -> Dict[str, float]:
    fast = grid[("PMS", "fast")]
    exact = grid[("PMS", "exact")]
    out = _common_metrics(exact)
    for metric in GATED_METRICS:
        out[f"err_{metric}"] = relative_error(fast, exact, metric)
        out[f"fast_{metric}"] = metric_value(fast, metric)
    return out


#: objective name -> :class:`Objective`.
OBJECTIVES: Dict[str, Objective] = {
    obj.name: obj
    for obj in (
        Objective(
            name="waste",
            description="minimise the PMS useful-prefetch fraction",
            cells=(("PMS", "exact"),),
            score=_waste_score,
            metrics=_waste_metrics,
        ),
        Objective(
            name="regret",
            description=(
                "maximise adaptive-scheduling cycles vs the best "
                "fixed policy (PMS_POLICY1..5)"
            ),
            cells=tuple(
                (config, "exact") for config in ("PMS",) + REGRET_POLICIES
            ),
            score=_regret_score,
            metrics=_regret_metrics,
        ),
        Objective(
            name="fidelity",
            description=(
                "maximise the fast-vs-exact relative error (worst "
                "gated metric) on PMS"
            ),
            cells=(("PMS", "fast"), ("PMS", "exact")),
            score=_fidelity_score,
            metrics=_fidelity_metrics,
        ),
    )
}


def get_objective(name: str) -> Objective:
    """Look an objective up by name with a helpful error."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None
