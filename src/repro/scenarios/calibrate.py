"""Per-trace fast-model calibration through the FidelityGate.

The fast model's error bars are calibrated per sweep
(docs/fidelity.md); a sweep over a *converted external trace* gives
that trace its own calibration record — evidence that the analytic
surrogate tracks this particular access pattern, not just the
synthetic profiles it was developed against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.sweep import expand_grid
from repro.fastsim.gate import CalibrationRecord, FidelityGate
from repro.fastsim.orchestrator import FidelityOutcome, run_fidelity_sweep
from repro.system.presets import CONFIG_NAMES
from repro.workloads.dynamic import trace_benchmark


def calibrate_trace(
    path: str,
    configs: Sequence[str] = CONFIG_NAMES,
    accesses: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    gate: Optional[FidelityGate] = None,
    use_store: Optional[bool] = None,
) -> Tuple[CalibrationRecord, FidelityOutcome]:
    """Calibrate the fast model on one converted trace file.

    Runs the trace (as a content-addressed ``trace:`` benchmark)
    through a ``fast``-fidelity sweep over ``configs``: every config
    gets a fast prediction, the gate's deterministic sample re-runs on
    the cycle-accurate simulator, and the measured error distribution
    comes back as the trace's own :class:`CalibrationRecord` (also
    attached to the persisted fast results).  ``accesses`` caps the
    replayed prefix; ``seed`` only participates in job identity (file
    replay has no randomness).
    """
    benchmark = trace_benchmark(path)
    specs = expand_grid([benchmark], list(configs), accesses=accesses,
                        seed=seed)
    outcome = run_fidelity_sweep(
        specs, fidelity="fast", jobs=jobs, gate=gate, use_store=use_store,
    )
    assert outcome.record is not None  # fast sweeps always calibrate
    return outcome.record, outcome
