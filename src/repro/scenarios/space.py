"""The adversarial search space over StreamWorkload parameters.

Each candidate is a complete :class:`~repro.workloads.synthetic.
StreamWorkload` — the axes the paper's own analysis says matter are
the axes the fuzzer explores:

* **stream-length mixtures** — the SLH shape ASD conditions on
  (isolated-line floods, knife-edge mixes of adjacent lengths);
* **phase-change storms** — many short phases with contradictory
  mixtures, so each epoch's SLH describes the *previous* phase;
* **interleave / SMT-style interference** — many live streams for the
  Stream Filter to untangle, with low burstiness scattering their
  touches;
* **burstiness / arrival density** — ``gap_mean`` from back-to-back to
  sparse, which moves the adaptive-scheduling conflict rate.

Sampling and mutation draw only from an explicitly seeded
``random.Random`` — a fuzz run is a pure function of its seed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads.dynamic import encode_workload
from repro.workloads.synthetic import StreamWorkload, WorkloadPhase

#: Stream lengths candidate mixtures draw from (SLH bucket territory).
LENGTH_CHOICES = (1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32)


def candidate_name(workload: StreamWorkload) -> str:
    """Short stable id of a candidate: digest of its full encoding."""
    text = encode_workload(
        StreamWorkload(**{**workload.__dict__, "name": ""})
    )
    return "fuzz-" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:10]


def _named(workload: StreamWorkload) -> StreamWorkload:
    """The candidate with its canonical digest name stamped on."""
    named = StreamWorkload(
        **{**workload.__dict__, "name": candidate_name(workload)}
    )
    named.validate()
    return named


@dataclass
class FuzzSpace:
    """Bounds of the search space (all axes overridable per fuzz run)."""

    gap_mean_max: float = 60.0
    hot_fraction_max: float = 0.9
    hot_lines_range: Tuple[int, int] = (256, 4096)
    write_fraction_max: float = 0.5
    interleave_max: int = 16
    max_phases: int = 4
    phase_round_range: Tuple[int, int] = (500, 8000)
    max_lengths: int = 5

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_dist(self, rng: random.Random) -> Dict[int, float]:
        """A random stream-length mixture over 1..max_lengths supports."""
        count = rng.randint(1, self.max_lengths)
        lengths = rng.sample(LENGTH_CHOICES, count)
        weights = [rng.random() + 0.05 for _ in lengths]
        total = sum(weights)
        return {
            length: round(weight / total, 4)
            for length, weight in sorted(zip(lengths, weights))
        }

    def _sample_phases(
        self, rng: random.Random
    ) -> Tuple[Tuple[WorkloadPhase, ...], int]:
        """Maybe a phase-change storm: several contradictory mixtures."""
        if rng.random() < 0.5:
            return (), 6000
        count = rng.randint(2, self.max_phases)
        phases = tuple(
            WorkloadPhase(
                weight=round(rng.uniform(0.1, 1.0), 3),
                length_dist=self._sample_dist(rng),
                gap_mean=(
                    round(rng.uniform(0.0, self.gap_mean_max), 2)
                    if rng.random() < 0.5 else None
                ),
                hot_fraction=(
                    round(rng.uniform(0.0, self.hot_fraction_max), 3)
                    if rng.random() < 0.3 else None
                ),
            )
            for _ in range(count)
        )
        phase_round = rng.randrange(*self.phase_round_range)
        return phases, phase_round

    def sample(self, rng: random.Random) -> StreamWorkload:
        """One random candidate (validated, canonically named)."""
        phases, phase_round = self._sample_phases(rng)
        return _named(StreamWorkload(
            name="",
            length_dist=self._sample_dist(rng),
            gap_mean=round(rng.uniform(0.0, self.gap_mean_max), 2),
            hot_fraction=round(rng.uniform(0.0, self.hot_fraction_max), 3),
            hot_lines=rng.randrange(*self.hot_lines_range),
            write_fraction=round(rng.uniform(0.0, self.write_fraction_max), 3),
            descending_fraction=round(rng.random(), 3),
            interleave=rng.randint(1, self.interleave_max),
            burstiness=round(rng.random(), 3),
            phases=phases,
            phase_round=phase_round,
        ))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def mutate(
        self, rng: random.Random, parent: StreamWorkload
    ) -> StreamWorkload:
        """A candidate near ``parent``: one to three axes perturbed."""
        changes: Dict[str, object] = {}
        axes = rng.sample(
            ("length_dist", "gap_mean", "hot_fraction", "write_fraction",
             "interleave", "burstiness", "descending_fraction", "phases"),
            rng.randint(1, 3),
        )
        for axis in axes:
            if axis == "length_dist":
                changes["length_dist"] = self._mutate_dist(
                    rng, parent.length_dist
                )
            elif axis == "gap_mean":
                changes["gap_mean"] = round(
                    _clamp(parent.gap_mean * rng.uniform(0.3, 2.0)
                           + rng.uniform(-4, 4), 0.0, self.gap_mean_max), 2)
            elif axis == "hot_fraction":
                changes["hot_fraction"] = round(
                    _clamp(parent.hot_fraction + rng.uniform(-0.3, 0.3),
                           0.0, self.hot_fraction_max), 3)
            elif axis == "write_fraction":
                changes["write_fraction"] = round(
                    _clamp(parent.write_fraction + rng.uniform(-0.15, 0.15),
                           0.0, self.write_fraction_max), 3)
            elif axis == "interleave":
                changes["interleave"] = int(_clamp(
                    parent.interleave + rng.choice((-4, -2, -1, 1, 2, 4)),
                    1, self.interleave_max))
            elif axis == "burstiness":
                changes["burstiness"] = round(
                    _clamp(parent.burstiness + rng.uniform(-0.4, 0.4),
                           0.0, 1.0), 3)
            elif axis == "descending_fraction":
                changes["descending_fraction"] = round(rng.random(), 3)
            elif axis == "phases":
                phases, phase_round = self._sample_phases(rng)
                changes["phases"] = phases
                changes["phase_round"] = phase_round
        return _named(StreamWorkload(
            **{**parent.__dict__, **changes, "name": ""}
        ))

    def _mutate_dist(
        self, rng: random.Random, dist: Dict[int, float]
    ) -> Dict[int, float]:
        """Jitter weights, maybe swap one support length in or out."""
        entries: List[Tuple[int, float]] = [
            (length, max(0.01, weight * rng.uniform(0.4, 1.8)))
            for length, weight in sorted(dist.items())
        ]
        if rng.random() < 0.4:
            unused = [c for c in LENGTH_CHOICES
                      if c not in {length for length, _ in entries}]
            if len(entries) > 1 and (not unused or rng.random() < 0.5):
                entries.pop(rng.randrange(len(entries)))
            elif unused:
                entries.append(
                    (rng.choice(unused), rng.random() + 0.05)
                )
        total = sum(weight for _, weight in entries)
        return {
            length: round(weight / total, 4)
            for length, weight in sorted(entries)
        }


def _clamp(value: float, low: float, high: float) -> float:
    """``value`` forced into [low, high]."""
    return max(low, min(high, value))
