"""Adversarial workload fuzzing over the StreamWorkload space.

:func:`run_fuzz` searches for parameter sets where the prefetcher (or
the fast model) does *badly*, as quantified by a pluggable
:class:`~repro.scenarios.objectives.Objective`.  The search is plain
random sampling plus mutation of the current worst-case elites —
cheap, embarrassingly parallel, and fully deterministic for a given
seed.

Execution rides the ordinary sweep engine: every candidate becomes a
``wl:`` dynamic benchmark (:mod:`repro.workloads.dynamic`) and each
round is one :func:`repro.experiments.sweep.run_jobs` call, so
candidate results dedupe into the result store under their exact
parameters, re-running a fuzz with the same seed is mostly store hits,
and crashes or timeouts get the sweep engine's flight-recorder
post-mortems.  The report itself (worst cases + objective scores +
the synthetic-default baseline) persists as JSON under
``<store root>/fuzz/``.
"""

from __future__ import annotations

import json
import logging
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments import runner, store
from repro.experiments.sweep import Job, SweepStats, run_jobs
from repro.obs import metrics as obs_metrics
from repro.scenarios.objectives import Objective, get_objective
from repro.scenarios.space import FuzzSpace
from repro.system.results import RunResult
from repro.workloads.dynamic import resolve_workload, workload_benchmark
from repro.workloads.synthetic import StreamWorkload

_log = logging.getLogger("repro.scenarios.fuzzer")

#: Candidates evaluated per sweep round (one run_jobs call each).
DEFAULT_ROUND_SIZE = 8
#: Share of each later round drawn by mutating current elites.
MUTATION_FRACTION = 0.5


@dataclass
class FuzzResult:
    """One evaluated candidate: identity, provenance, score, metrics."""

    name: str  # short digest name ("fuzz-..." or the baseline's name)
    benchmark: str  # full wl: encoding — decodable, store-key identity
    origin: str  # "random", "mutation", or "baseline"
    round: int
    score: float
    metrics: Dict[str, float] = field(default_factory=dict)

    def workload(self) -> StreamWorkload:
        """The candidate's full parameter set, decoded from its name."""
        return resolve_workload(self.benchmark)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (what the report file stores)."""
        return {
            "name": self.name,
            "benchmark": self.benchmark,
            "origin": self.origin,
            "round": self.round,
            "score": self.score,
            "metrics": dict(self.metrics),
        }


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` call found."""

    objective: str
    seed: int
    budget: int
    accesses: int
    evaluated: int
    rounds: int
    baseline: FuzzResult
    results: List[FuzzResult]  # worst cases, most adversarial first
    stats: SweepStats
    path: Optional[str] = None  # where the report persisted, if it did

    @property
    def best(self) -> Optional[FuzzResult]:
        """The most adversarial candidate found (None on empty budget)."""
        return self.results[0] if self.results else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of the whole report."""
        return {
            "objective": self.objective,
            "seed": self.seed,
            "budget": self.budget,
            "accesses": self.accesses,
            "evaluated": self.evaluated,
            "rounds": self.rounds,
            "baseline": self.baseline.to_dict(),
            "results": [result.to_dict() for result in self.results],
            "sweep": self.stats.as_dict(),
        }

    def summary(self) -> str:
        """The one-line outcome ``repro fuzz`` prints."""
        line = (
            f"fuzz[{self.objective}] seed={self.seed}: "
            f"{self.evaluated} candidates in {self.rounds} round(s), "
            f"baseline score {self.baseline.score:.4f}"
        )
        if self.best is not None:
            line += (
                f", worst case {self.best.name} "
                f"score {self.best.score:.4f}"
            )
        if self.path is not None:
            line += f" -> {self.path}"
        return line


def report_path(objective: str, seed: int, root: Optional[str] = None) -> str:
    """Where the report for (objective, seed) persists under the store."""
    root = root if root is not None else store.store_root()
    return os.path.join(root, "fuzz", f"{objective}-seed{seed}.json")


def save_report(report: FuzzReport, root: Optional[str] = None) -> str:
    """Persist a report as JSON (atomic rename), returning its path."""
    path = report_path(report.objective, report.seed, root)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    report.path = path
    return path


def _evaluate(
    batch: List[Tuple[str, str, int]],
    objective: Objective,
    accesses: Optional[int],
    seed: int,
    jobs: int,
    use_store: Optional[bool],
    stats: SweepStats,
) -> List[FuzzResult]:
    """Score one batch of candidates through a single sweep call.

    ``batch`` rows are ``(benchmark, origin, round)``; each candidate
    contributes one job per objective cell, and the whole batch is one
    ``run_jobs`` call so parallelism and store dedupe span candidates.
    """
    specs = [
        Job(benchmark=benchmark, config_name=config, accesses=accesses,
            seed=seed, fidelity=fidelity)
        for benchmark, _, _ in batch
        for config, fidelity in objective.cells
    ]
    outcome = run_jobs(specs, jobs=jobs, use_store=use_store)
    stats.merge(outcome.stats)
    results: List[FuzzResult] = []
    width = len(objective.cells)
    for slot, (benchmark, origin, rnd) in enumerate(batch):
        grid: Dict[Tuple[str, str], RunResult] = {
            cell: outcome.results[slot * width + offset]
            for offset, cell in enumerate(objective.cells)
        }
        name = resolve_workload(benchmark).name
        results.append(FuzzResult(
            name=name,
            benchmark=benchmark,
            origin=origin,
            round=rnd,
            score=objective.score(grid),
            metrics=objective.metrics(grid),
        ))
    return results


def run_fuzz(
    budget: int,
    seed: int = 0,
    objective: str = "waste",
    accesses: Optional[int] = None,
    jobs: int = 1,
    top: int = 8,
    round_size: int = DEFAULT_ROUND_SIZE,
    space: Optional[FuzzSpace] = None,
    use_store: Optional[bool] = None,
    save: Optional[bool] = None,
) -> FuzzReport:
    """Search ``budget`` candidate workloads for the worst cases.

    Deterministic for a given ``seed``: the candidate sequence comes
    from one seeded ``random.Random`` and every evaluation is an
    ordinary deterministic simulation, so the same call finds the same
    worst cases (and, with the store on, mostly re-reads them).

    The first rounds sample the :class:`FuzzSpace` at random; once
    elites exist, half of each round mutates them instead.  ``top``
    bounds the elite set and the report size.  ``save`` controls
    report persistence under ``<store root>/fuzz/`` (default: persist
    exactly when the result store is enabled).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    chosen = get_objective(objective)
    space = space or FuzzSpace()
    rng = random.Random(seed)
    metrics = obs_metrics.default_registry()
    if metrics.enabled:
        candidates_total = metrics.counter(
            "repro_fuzz_candidates_total",
            "Fuzz candidates evaluated, by objective and origin.",
            ("objective", "origin"),
        )
        best_gauge = metrics.gauge(
            "repro_fuzz_best_score",
            "Most adversarial objective score seen so far.",
            ("objective",),
        )
    stats = SweepStats()

    # The synthetic-default workload anchors every report: "how bad is
    # the found worst case" only means something against this score.
    baseline = _evaluate(
        [(workload_benchmark(StreamWorkload()), "baseline", 0)],
        chosen, accesses, seed, jobs, use_store, stats,
    )[0]

    seen = {baseline.benchmark}
    elites: List[FuzzResult] = []
    evaluated = 0
    rounds = 0
    while evaluated < budget:
        want = min(round_size, budget - evaluated)
        rounds += 1
        batch: List[Tuple[str, str, int]] = []
        misses = 0
        while len(batch) < want and misses < want * 20:
            mutate = bool(elites) and rng.random() < MUTATION_FRACTION
            if mutate:
                parent = rng.choice(elites).workload()
                candidate = space.mutate(rng, parent)
                origin = "mutation"
            else:
                candidate = space.sample(rng)
                origin = "random"
            benchmark = workload_benchmark(candidate)
            if benchmark in seen:
                misses += 1  # duplicate of an already-evaluated point
                continue
            seen.add(benchmark)
            batch.append((benchmark, origin, rounds))
        if not batch:
            _log.warning(
                "fuzz search stagnated after %d candidates (every new "
                "draw was a duplicate); stopping early", evaluated,
            )
            break
        scored = _evaluate(
            batch, chosen, accesses, seed, jobs, use_store, stats
        )
        evaluated += len(scored)
        elites = sorted(
            elites + scored, key=lambda r: (-r.score, r.name)
        )[:max(1, top)]
        if metrics.enabled:
            for result in scored:
                candidates_total.inc(objective=chosen.name,
                                     origin=result.origin)
            best_gauge.set(elites[0].score, objective=chosen.name)
        _log.info(
            "fuzz round %d: %d candidate(s), best %s score %.4f",
            rounds, len(scored), elites[0].name, elites[0].score,
        )

    report = FuzzReport(
        objective=chosen.name,
        seed=seed,
        budget=budget,
        accesses=runner.resolve_accesses(accesses),
        evaluated=evaluated,
        rounds=rounds,
        baseline=baseline,
        results=elites,
        stats=stats,
    )
    persist = (
        save if save is not None
        else (store.store_enabled() if use_store is None else use_store)
    )
    if persist:
        save_report(report)
    return report
