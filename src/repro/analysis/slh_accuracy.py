"""Figure 16: how well the finite Stream Filter approximates the SLH.

The filter-computed histogram differs from the exact one because only
``slots`` streams can be tracked at once and because slot lifetimes can
split long quiet streams.  ``exact_slh`` computes the ground-truth
histogram of a read-address sequence with an *unbounded* stream tracker,
and ``slh_rms_error`` quantifies the gap the paper shows to be small.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.prefetch.slh import slh_bars


class _XStream:
    __slots__ = ("last", "length", "step", "expiry")

    def __init__(self, last: int, expiry: int) -> None:
        self.last = last
        self.length = 1
        self.step = 0  # unknown until length 2
        self.expiry = expiry


def exact_slh(
    lines: Sequence[int], table_len: int = 16, window: int = 64
) -> List[float]:
    """Ground-truth SLH bars of a read-address sequence.

    Tracks *every* live stream (no slot limit).  A stream dies when no
    read extends it within ``window`` subsequent reads — the unbounded
    analogue of the hardware lifetime.  Returns bars in the format of
    :func:`repro.prefetch.slh.slh_bars`: ``bars[i]`` is the fraction of
    reads belonging to streams of exactly length ``i`` (the last bar
    aggregates lengths >= Lm).
    """
    if table_len < 2:
        raise ValueError("table_len must be >= 2")
    if window < 1:
        raise ValueError("window must be >= 1")

    lht = [0] * (table_len + 1)

    def credit(stream: _XStream) -> None:
        top = min(stream.length, table_len)
        for i in range(1, top + 1):
            lht[i] += stream.length

    # expectation (next line that would extend the stream) -> stream;
    # a length-1 stream registers both neighbours.
    expect: Dict[int, _XStream] = {}
    streams: List[_XStream] = []

    def drop_expectations(stream: _XStream) -> None:
        if stream.length == 1:
            for key in (stream.last + 1, stream.last - 1):
                if expect.get(key) is stream:
                    del expect[key]
        else:
            key = stream.last + stream.step
            if expect.get(key) is stream:
                del expect[key]

    def sweep(idx: int) -> None:
        alive: List[_XStream] = []
        for stream in streams:
            if stream.expiry < idx:
                drop_expectations(stream)
                credit(stream)
            else:
                alive.append(stream)
        streams[:] = alive

    for idx, line in enumerate(lines):
        if idx % 4096 == 0:
            sweep(idx)
        stream = expect.get(line)
        if stream is not None and stream.expiry < idx:
            drop_expectations(stream)
            credit(stream)
            streams.remove(stream)
            stream = None
        if stream is not None:
            drop_expectations(stream)
            stream.step = 1 if line > stream.last else -1
            stream.last = line
            stream.length += 1
            stream.expiry = idx + window
            expect[line + stream.step] = stream
        else:
            fresh = _XStream(line, idx + window)
            streams.append(fresh)
            expect[line + 1] = fresh
            expect[line - 1] = fresh

    for stream in streams:
        credit(stream)
    return slh_bars(lht, table_len)


def slh_rms_error(approx: Sequence[float], exact: Sequence[float]) -> float:
    """Root-mean-square difference between two SLH bar vectors.

    Index 0 of each vector is the unused placeholder produced by
    :func:`repro.prefetch.slh.slh_bars` and is excluded.
    """
    if len(approx) != len(exact):
        raise ValueError("bar vectors must have equal length")
    if len(approx) <= 1:
        return 0.0
    diffs = [(a - b) ** 2 for a, b in zip(approx[1:], exact[1:])]
    return math.sqrt(sum(diffs) / len(diffs))
