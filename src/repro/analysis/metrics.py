"""Suite-level aggregation of run results.

The paper reports per-benchmark bars plus arithmetic-mean "Average"
bars (Figures 5-10); these helpers compute both from a mapping of
``{benchmark: {config: RunResult}}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.system.results import RunResult


@dataclass
class ConfigComparison:
    """One benchmark's gains between configurations (one figure bar group)."""

    benchmark: str
    pms_vs_np: float
    ms_vs_np: float
    pms_vs_ps: float


@dataclass
class SuiteResult:
    """All comparisons of one suite plus the paper-style averages."""

    suite: str
    rows: List[ConfigComparison] = field(default_factory=list)

    @property
    def avg_pms_vs_np(self) -> float:
        return _mean([r.pms_vs_np for r in self.rows])

    @property
    def avg_ms_vs_np(self) -> float:
        return _mean([r.ms_vs_np for r in self.rows])

    @property
    def avg_pms_vs_ps(self) -> float:
        return _mean([r.pms_vs_ps for r in self.rows])


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def compare_runs(
    suite: str, runs: Mapping[str, Mapping[str, RunResult]]
) -> SuiteResult:
    """Build the Figure 5/6/7 comparisons from raw runs.

    ``runs`` maps benchmark name to a dict holding at least the "NP",
    "PS", "MS", and "PMS" results for the same trace.
    """
    result = SuiteResult(suite)
    for benchmark, by_config in runs.items():
        for required in ("NP", "PS", "MS", "PMS"):
            if required not in by_config:
                raise KeyError(f"{benchmark}: missing config {required!r}")
        np_run = by_config["NP"]
        result.rows.append(
            ConfigComparison(
                benchmark=benchmark,
                pms_vs_np=by_config["PMS"].gain_vs(np_run),
                ms_vs_np=by_config["MS"].gain_vs(np_run),
                pms_vs_ps=by_config["PMS"].gain_vs(by_config["PS"]),
            )
        )
    return result


def power_energy_rows(
    runs: Mapping[str, Mapping[str, RunResult]],
    test_config: str = "PMS",
    base_config: str = "PS",
) -> List[Dict[str, float]]:
    """Figure 8/9/10 rows: DRAM power increase and energy reduction.

    Returns one dict per benchmark with keys ``benchmark``,
    ``power_increase_pct`` and ``energy_reduction_pct``.
    """
    rows: List[Dict[str, float]] = []
    for benchmark, by_config in runs.items():
        test = by_config[test_config]
        base = by_config[base_config]
        rows.append(
            {
                "benchmark": benchmark,
                "power_increase_pct": test.power_increase_vs(base),
                "energy_reduction_pct": test.energy_reduction_vs(base),
            }
        )
    return rows
