"""Analysis: derived metrics, hardware cost accounting, and reports.

* :mod:`repro.analysis.metrics` — suite-level aggregation of run
  results (the numbers behind Figures 5-10 and 13).
* :mod:`repro.analysis.hardware` — the Section 5.1 hardware-cost
  accounting: state bits, comparators, and area/power estimates.
* :mod:`repro.analysis.slh_accuracy` — Figure 16's comparison of the
  finite-Stream-Filter SLH against the exact histogram.
* :mod:`repro.analysis.report` — plain-text rendering of tables and
  bar-series in the paper's layout.
"""

from repro.analysis.hardware import HardwareCost, estimate_cost
from repro.analysis.metrics import ConfigComparison, SuiteResult, compare_runs
from repro.analysis.report import format_bar_chart, format_table
from repro.analysis.slh_accuracy import exact_slh, slh_rms_error

__all__ = [
    "ConfigComparison",
    "HardwareCost",
    "SuiteResult",
    "compare_runs",
    "estimate_cost",
    "exact_slh",
    "format_bar_chart",
    "format_table",
    "slh_rms_error",
]
