"""Hardware-cost accounting for the memory-side prefetcher.

Reproduces the Section 5.1 arithmetic: the prefetcher's storage is a
few small per-thread tables plus one shared Prefetch Buffer and LPQ, so
its area is a small fraction of the memory controller, which itself is
1.61% of the Power5+ die.  The paper reports the extension as ~6.08% of
the controller area, i.e. ~0.098% of the chip, and ~0.06% of chip
power; we reproduce the accounting from the configured structure sizes,
anchored to the same controller-area and power fractions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.config import MemorySidePrefetcherConfig

#: Power5+ constants the paper anchors its estimates to.
MC_FRACTION_OF_CHIP_AREA = 0.0161  # "about 1.61% of the entire chip area"
MC_FRACTION_OF_CHIP_POWER = 0.01  # "about 1% of the chip's power"
PAPER_MC_AREA_INCREASE = 0.0608  # "about 6.08%"
PAPER_MC_POWER_INCREASE = 0.06  # "approximately 6%"

#: Address-tag width assumed for line addresses held in prefetcher state.
ADDR_BITS = 42


@dataclass(frozen=True)
class HardwareCost:
    """State and logic inventory of one memory-side prefetcher."""

    stream_filter_bits: int
    lht_bits: int
    prefetch_buffer_bits: int
    lpq_bits: int
    comparators: int
    threads: int

    @property
    def total_state_bits(self) -> int:
        return (
            self.stream_filter_bits
            + self.lht_bits
            + self.prefetch_buffer_bits
            + self.lpq_bits
        )

    @property
    def total_state_bytes(self) -> float:
        return self.total_state_bits / 8

    def mc_area_increase(self, paper_anchor_bits: int) -> float:
        """MC-area increase, scaling the paper's 6.08% by state ratio.

        ``paper_anchor_bits`` is the state-bit count of the paper's
        configuration; the returned fraction equals the paper's for that
        configuration and scales linearly for sweeps.
        """
        if paper_anchor_bits <= 0:
            raise ValueError("anchor must be positive")
        return PAPER_MC_AREA_INCREASE * self.total_state_bits / paper_anchor_bits

    def chip_area_increase(self, paper_anchor_bits: int) -> float:
        return self.mc_area_increase(paper_anchor_bits) * MC_FRACTION_OF_CHIP_AREA

    def chip_power_increase(self, paper_anchor_bits: int) -> float:
        return (
            PAPER_MC_POWER_INCREASE
            * (self.total_state_bits / paper_anchor_bits)
            * MC_FRACTION_OF_CHIP_POWER
        )


def _counter_bits(epoch_reads: int, table_len: int) -> int:
    """Width of one LHT entry: it must count up to epoch_reads * Lm."""
    return max(1, math.ceil(math.log2(epoch_reads * table_len + 1)))


def estimate_cost(
    config: MemorySidePrefetcherConfig, threads: int = 1, line_bytes: int = 128
) -> HardwareCost:
    """Inventory the prefetcher's storage for a given configuration.

    Per thread: a Stream Filter (address, length, direction, lifetime
    per slot) and two Likelihood Tables per direction.  Shared: the
    Prefetch Buffer (data + tags) and the LPQ.  Comparators: one per
    adjacent LHTcurr pair, per direction, per thread (Section 3.4).
    """
    config.validate()
    sf = config.stream_filter
    slh = config.slh

    length_bits = max(1, math.ceil(math.log2(slh.table_len + 1)))
    lifetime_bits = max(1, math.ceil(math.log2(sf.lifetime_cap + 1)))
    slot_bits = ADDR_BITS + length_bits + 1 + lifetime_bits
    sf_bits = threads * sf.slots * slot_bits

    cbits = _counter_bits(slh.epoch_reads, slh.table_len)
    # two tables (curr/next) x two directions x Lm entries
    lht_bits = threads * 2 * 2 * slh.table_len * cbits

    pb_bits = config.buffer.entries * (line_bytes * 8 + ADDR_BITS + 1)
    lpq_bits = config.lpq_depth * (ADDR_BITS + 16)

    comparators = threads * 2 * (slh.table_len - 1)

    return HardwareCost(
        stream_filter_bits=sf_bits,
        lht_bits=lht_bits,
        prefetch_buffer_bits=pb_bits,
        lpq_bits=lpq_bits,
        comparators=comparators,
        threads=threads,
    )


def paper_anchor_bits() -> int:
    """State bits of the paper's evaluated configuration (Section 5.1)."""
    return estimate_cost(MemorySidePrefetcherConfig(enabled=True), threads=1).total_state_bits
