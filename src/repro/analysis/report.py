"""Plain-text rendering of tables and bar charts.

The benchmark harness prints every reproduced figure as an ASCII table
or horizontal bar chart in the paper's layout, so a terminal diff
against EXPERIMENTS.md is enough to audit a reproduction run.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Left-aligned text table; floats are rendered with one decimal."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            # small magnitudes (ratios) keep two decimals; big ones one
            return f"{value:.2f}" if abs(value) < 10 else f"{value:.1f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def format_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "%",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart (one labelled bar per entry)."""
    if not values:
        return title
    peak = max_value if max_value is not None else max(
        (abs(v) for v in values.values()), default=1.0
    )
    peak = peak or 1.0
    label_w = max(len(k) for k in values)
    out: List[str] = []
    if title:
        out.append(title)
    for key, value in values.items():
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        out.append(f"{key.ljust(label_w)}  {value:+7.1f}{unit} |{bar}")
    return "\n".join(out)
