"""Two-fidelity sweep orchestration: fast everywhere, exact where it counts.

This module is the policy layer above :func:`repro.experiments.sweep.
run_jobs`.  The sweep engine executes *per-job* tiers ("exact" or
"fast"); the orchestrator lowers the user-facing *sweep* fidelity into
per-job tiers:

``exact``
    Every job runs the cycle-accurate simulator (the historical path —
    byte-identical job keys, no calibration overhead).

``fast``
    Every job runs the :mod:`repro.fastsim.model`; a
    :class:`~repro.fastsim.gate.FidelityGate` sample additionally runs
    exact, and the measured error distribution is attached to every
    fast result as validated error bars.

``auto``
    Like ``fast``, then points the model cannot decide are escalated:
    the gate's validation sample is replaced by its exact results
    outright, and any point whose predicted gain over the sweep's
    baseline config lies inside the calibrated error band re-runs
    exact too (see :func:`repro.fastsim.gate.near_decision_boundary`).

All tiers flow through the same cache + store + observability path;
fast results are persisted *with* their error bars, so a later session
loading them from the store still sees the calibration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import runner, store
from repro.experiments.sweep import Job, SweepStats, prepare, run_jobs
from repro.fastsim.gate import CalibrationRecord, FidelityGate, near_decision_boundary
from repro.fastsim.version import SWEEP_FIDELITIES
from repro.system.results import RunResult

#: The config whose runs anchor gain-vs-baseline escalation decisions.
DEFAULT_BASELINE_CONFIG = "NP"


@dataclasses.dataclass
class FidelityOutcome:
    """A two-fidelity sweep's results plus its calibration evidence."""

    results: List[RunResult]
    stats: SweepStats
    #: the gate's measured error distribution (None for exact sweeps)
    record: Optional[CalibrationRecord] = None
    #: positions in ``results`` that were cross-validated exactly
    validated_indices: List[int] = dataclasses.field(default_factory=list)
    #: positions escalated to exact by the decision-boundary rule
    escalated_indices: List[int] = dataclasses.field(default_factory=list)


def _job_keys(specs: Sequence[Job]) -> List[str]:
    """The store job key of every spec (the gate's sampling domain)."""
    return [store.job_key(prepare(job)[2]) for job in specs]


def _attach_and_persist(
    specs: Sequence[Job],
    results: Sequence[RunResult],
    record: CalibrationRecord,
    use_store: Optional[bool],
) -> None:
    """Stamp calibrated error bars onto fast results, cache and store.

    The sweep persisted the fast results *before* calibration existed;
    re-putting the stamped results keeps the on-disk entries (and the
    in-process cache) carrying their error bars for later sessions.
    """
    enabled = store.store_enabled() if use_store is None else use_store
    active_store = store.get_store() if enabled else None
    for job, result in zip(specs, results):
        if result.fidelity is None:
            continue
        FidelityGate.attach(result, record)
        _, key, spec, _ = prepare(job)
        runner.seed_cache(key, result)
        if active_store is not None:
            active_store.put(spec, result)


def run_fidelity_sweep(
    specs: Sequence[Job],
    fidelity: str = "exact",
    jobs: int = 1,
    gate: Optional[FidelityGate] = None,
    baseline_config: str = DEFAULT_BASELINE_CONFIG,
    use_store: Optional[bool] = None,
    **run_kwargs: object,
) -> FidelityOutcome:
    """Execute a sweep at the requested fidelity tier.

    ``specs`` are sweep jobs in any tier (their per-job ``fidelity``
    is overridden by the sweep policy).  ``run_kwargs`` pass through to
    :func:`~repro.experiments.sweep.run_jobs` (timeout, retries,
    progress, metrics, recorder).
    """
    if fidelity not in SWEEP_FIDELITIES:
        raise ValueError(
            f"unknown sweep fidelity {fidelity!r}: expected one of "
            f"{SWEEP_FIDELITIES}"
        )
    if fidelity == "exact":
        outcome = run_jobs(
            [replace(job, fidelity="exact") for job in specs],
            jobs=jobs, use_store=use_store, **run_kwargs,
        )
        return FidelityOutcome(results=outcome.results, stats=outcome.stats)

    gate = gate or FidelityGate()
    fast_specs = [replace(job, fidelity="fast") for job in specs]
    fast = run_jobs(fast_specs, jobs=jobs, use_store=use_store, **run_kwargs)
    stats = fast.stats
    if not specs:
        return FidelityOutcome(results=[], stats=stats)

    # -- exact cross-validation on the deterministic sample ------------
    validated = gate.select(_job_keys(fast_specs))
    exact_specs = [replace(fast_specs[i], fidelity="exact") for i in validated]
    exact = run_jobs(exact_specs, jobs=jobs, use_store=use_store, **run_kwargs)
    stats.merge(exact.stats)
    pairs: List[Tuple[RunResult, RunResult]] = [
        (fast.results[i], exact.results[pos])
        for pos, i in enumerate(validated)
    ]
    record = gate.calibrate(pairs)
    stats.validated = len(validated)

    _attach_and_persist(fast_specs, fast.results, record, use_store)
    results = list(fast.results)

    escalated: List[int] = []
    if fidelity == "auto":
        # The validation sample's exact results are already paid for —
        # serve them instead of their fast twins.
        for pos, i in enumerate(validated):
            results[i] = exact.results[pos]
        escalated = _escalate_boundary_points(
            fast_specs, results, record, baseline_config,
            exclude=set(validated),
        )
        if escalated:
            rerun_specs = [
                replace(fast_specs[i], fidelity="exact") for i in escalated
            ]
            rerun = run_jobs(
                rerun_specs, jobs=jobs, use_store=use_store, **run_kwargs
            )
            stats.merge(rerun.stats)
            for pos, i in enumerate(escalated):
                results[i] = rerun.results[pos]

    return FidelityOutcome(
        results=results,
        stats=stats,
        record=record,
        validated_indices=validated,
        escalated_indices=escalated,
    )


def _escalate_boundary_points(
    specs: Sequence[Job],
    results: Sequence[RunResult],
    record: CalibrationRecord,
    baseline_config: str,
    exclude: set,
) -> List[int]:
    """Indices of fast points too close to the gain decision boundary.

    A point is undecidable when its predicted gain over the sweep's
    own baseline run (same benchmark/trace shape, ``baseline_config``)
    is smaller than the calibrated cycle-error band — the fast model
    cannot even sign the comparison there, so ``auto`` buys the exact
    answer.  Sweeps without a baseline config escalate nothing.
    """
    baselines: Dict[Tuple[str, int, int, int], RunResult] = {}
    for job, result in zip(specs, results):
        if job.config_name == baseline_config:
            baselines[(job.benchmark, job.accesses, job.seed, job.threads)] = (
                result
            )
    escalated: List[int] = []
    for index, (job, result) in enumerate(zip(specs, results)):
        if index in exclude or job.config_name == baseline_config:
            continue
        if result.fidelity is None:  # already exact (validated slot)
            continue
        baseline = baselines.get(
            (job.benchmark, job.accesses, job.seed, job.threads)
        )
        if baseline is None:
            continue
        if near_decision_boundary(result, baseline, record):
            escalated.append(index)
    return escalated
