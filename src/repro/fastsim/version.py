"""The fast-model version stamp.

Kept in a leaf module with no imports so that low-level consumers (the
result store derives job keys from it; the wire protocol ships it) can
depend on the constant without pulling the model in.

Bump whenever a change to :mod:`repro.fastsim.model` or
:mod:`repro.fastsim.banktables` can change a prediction: the version is
part of every fast job's store spec, so stale fast results are never
served across model revisions (exact results are unaffected — their
specs do not carry the field).
"""

from __future__ import annotations

#: Part of every fast job's store key; see module docstring.
FAST_MODEL_VERSION = 1

#: The fidelity tiers a job or sweep can request.
FIDELITY_EXACT = "exact"
FIDELITY_FAST = "fast"
FIDELITY_AUTO = "auto"

#: Tiers a single job can carry ("auto" is a sweep-level plan, never a
#: per-job identity).
JOB_FIDELITIES = (FIDELITY_EXACT, FIDELITY_FAST)

#: Tiers `repro sweep --fidelity` accepts.
SWEEP_FIDELITIES = (FIDELITY_EXACT, FIDELITY_FAST, FIDELITY_AUTO)
