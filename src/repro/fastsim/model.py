"""The fast analytic model: milliseconds per grid cell, not seconds.

Where the cycle-accurate simulator advances every component every MC
cycle (or event), this model makes one pass over the trace and *computes*
the run outcome from first-order structure:

* a single unified LRU **capacity filter** (L1+L2+L3 lines) decides
  which accesses reach the memory controller — compulsory and capacity
  misses, dirty-eviction write traffic;
* a slot-limited **stream tracker** feeds real
  :class:`~repro.prefetch.slh.LikelihoodTables` (the paper's LHT pair),
  so ASD prefetch decisions use the genuine inequality (5)/(6) over the
  genuine stream-length histogram, epoch by epoch;
* a precomputed :mod:`~repro.fastsim.banktables` table prices each DRAM
  access by row state (hit / miss / empty) under the exact device's
  line-interleaved address map;
* a **queueing approximation** advances congestion state once per SLH
  epoch ("batched state advance"): bank and bus utilisation observed in
  epoch *k* sets the M/D/1-style queue wait applied in epoch *k+1*;
* DRAM energy reuses the exact :class:`~repro.dram.power.DRAMPowerModel`
  arithmetic with the predicted activity counts.

The output is a normal :class:`~repro.system.results.RunResult` whose
``stats`` carry every key the figure pipeline reads (coverage, accuracy,
latency, occupancy), plus a ``fast.*`` namespace with model-internal
diagnostics, and whose ``fidelity`` field marks the tier.  Expected
error versus the exact simulator is a few to ~20 percent per metric —
quantified, per sweep, by :mod:`repro.fastsim.gate`.

Determinism: the model is a pure function of (config, traces); it never
consults the host clock or an RNG, and it is subject to the same
analysislint DET rules as the cycle-accurate packages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.dram.power import DRAMPowerModel
from repro.fastsim.banktables import BankTimingTable, bank_table
from repro.fastsim.probes import FastModelProbes
from repro.fastsim.version import FAST_MODEL_VERSION, FIDELITY_FAST
from repro.prefetch.slh import LikelihoodTables
from repro.system.results import RunResult
from repro.workloads.trace import Trace

#: Stream position at which the Power5-style processor-side prefetcher
#: is considered ramped (detected on the 2nd sequential miss, covering
#: from the 3rd).
_PS_RAMP_POSITION = 3

#: Utilisation is clamped below 1 so the M/D/1 wait stays finite.
_RHO_CAP = 0.95


class _StreamSlot:
    """One simplified Stream Filter slot.

    ``expires`` is the MC-read index at which the slot's lifetime runs
    out — lifetimes count reads (the repo's ``lifetime_unit="reads"``
    default), so expiry is a comparison, not a per-read decrement.
    """

    __slots__ = ("length", "expires")

    def __init__(self, expires: int) -> None:
        self.length = 1
        self.expires = expires


class _FastState:
    """Everything the single trace pass accumulates."""

    __slots__ = (
        "instructions", "cpu_cycles", "mc_reads", "demand_reads",
        "ps_reads", "pb_hits", "pb_inserts", "pb_read_hits",
        "dram_reads", "dram_writes", "prefetch_reads", "activations",
        "lat_sum_demand", "lat_cnt_demand", "bank_busy", "bus_busy",
        "occ_integral", "epochs", "epoch_cpu", "epoch_bank",
        "epoch_bus", "epoch_reads_seen", "q_wait", "row_hits",
        "row_refs", "cache_misses", "cache_refs", "cpu_ratio",
    )

    def __init__(self, cpu_ratio: float) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)
        self.q_wait = 0.0
        self.cpu_ratio = cpu_ratio


def _epoch_advance(
    state: _FastState,
    table: BankTimingTable,
    probes: Optional[FastModelProbes],
    slh: Optional[LikelihoodTables],
) -> None:
    """Batched state advance at one SLH epoch boundary.

    Converts the epoch's observed bank/bus busy time into utilisation,
    derives the queue wait applied throughout the *next* epoch (M/D/1
    waiting time against the busier of the two resources), and emits
    one probe sample.
    """
    epoch_mc = max(1.0, state.epoch_cpu / state.cpu_ratio)
    rho_bank = state.epoch_bank / (epoch_mc * table.banks)
    rho_bus = state.epoch_bus / epoch_mc
    rho = min(max(rho_bank, rho_bus), _RHO_CAP)
    accesses = max(1, state.epoch_bank // max(1, table.read_empty))
    avg_service = state.epoch_bank / accesses
    # M/M/1-shaped wait rather than M/D/1: miss arrivals are bursty
    # (dependent misses release in clumps when a stall resolves), which
    # the deterministic-service halving underestimates.
    state.q_wait = avg_service * rho / (1.0 - rho)
    if probes is not None:
        probes.sample(
            state.epochs,
            {
                "rho": rho,
                "queue_wait_mc": state.q_wait,
                "mc_reads": state.mc_reads,
                "pb_hits": state.pb_hits,
                "prefetches": state.pb_inserts,
                "row_hit_rate": (
                    state.row_hits / state.row_refs if state.row_refs else 0.0
                ),
                "slh_bars": list(slh.curr[1:]) if slh is not None else [],
            },
        )
    state.epochs += 1
    state.epoch_cpu = 0
    state.epoch_bank = 0
    state.epoch_bus = 0
    state.epoch_reads_seen = 0


def predict(
    config: SystemConfig,
    traces: Sequence[Trace],
    probes: Optional[FastModelProbes] = None,
) -> RunResult:
    """Predict one run's outcome from a single pass over the trace.

    Mirrors :func:`repro.system.simulator.simulate`'s signature shape so
    callers can swap fidelity tiers without reshaping arguments.
    """
    config.validate()
    if len(traces) == 1:
        records = traces[0].records
    else:
        records = Trace.interleave(list(traces)).records
    hier = config.hierarchy
    core = config.core
    ctrl = config.controller
    ms = config.ms_prefetcher
    ps = config.ps_prefetcher
    table = bank_table(config.dram)
    cpu_ratio = core.cpu_ratio
    # A blocking miss stalls the core for the MC round trip; the L2/L3
    # lookup cost overlaps with it (matching the exact core's charge of
    # lat_mc * cpu_ratio per miss).  A PS-covered read only pays an
    # L2-hit-ish cost: the prefetched line is in (or on its way to) the
    # hierarchy when the demand arrives.
    ps_cover_cost = hier.l2.latency

    # -- capacity filter ------------------------------------------------
    capacity = hier.l1.num_lines + hier.l2.num_lines + hier.l3.num_lines
    lru: "OrderedDict[int, bool]" = OrderedDict()  # line -> dirty

    # -- stream state ---------------------------------------------------
    slh = LikelihoodTables(ms.slh) if ms.enabled else None
    slots: Dict[int, _StreamSlot] = {}  # expected next line -> slot
    slot_limit = ms.stream_filter.slots
    life_init = ms.stream_filter.lifetime_init
    life_ext = ms.stream_filter.lifetime_init + ms.stream_filter.lifetime_increment
    pb: "OrderedDict[int, float]" = OrderedDict()  # line -> ready (MC time)
    pb_capacity = ms.buffer.entries
    # expected next line -> (position, cpu time of last advance)
    ps_streams: "OrderedDict[int, tuple]" = OrderedDict()
    ps_overshoot = 0  # MC reads wasted past the ends of ramped streams
    # A dead ramped stream strands its in-flight lead: the Power5 engine
    # keeps ``ramp`` growing toward ``l2_lead``, so a stream observed to
    # position P wasted about min(ramp + (P - 2), l2_lead) lines.
    ps_lead = ps.l2_lead if ps.engine == "power5" else ps.lead
    ps_ramp = ps.ramp if ps.engine == "power5" else ps.lead

    def ps_waste(pos: int) -> int:
        return min(ps_ramp + max(pos - 2, 0), ps_lead)
    epoch_len = ms.slh.epoch_reads if ms.enabled else 1000

    st = _FastState(float(cpu_ratio))
    banks = table.banks
    row_lines = table.row_lines
    open_rows: Dict[int, int] = {}
    closed_page = table.page_policy == "closed"

    def dram_access(line: int, service_read: bool, is_write: bool) -> int:
        """Price one DRAM access; returns its service time in MC cycles."""
        bank = line % banks
        row = (line // banks) // row_lines
        held = open_rows.get(bank)
        if closed_page:
            state_name = "empty"
            st.activations += 1
        elif held == row:
            state_name = "hit"
            st.row_hits += 1
        else:
            state_name = "empty" if held is None else "miss"
            st.activations += 1
            open_rows[bank] = row
        st.row_refs += 1
        service = (
            table.read_service(state_name)
            if service_read
            else table.write_service(state_name)
        )
        st.epoch_bank += service
        st.epoch_bus += table.bus_cycles
        if is_write:
            st.dram_writes += 1
        else:
            st.dram_reads += 1
        return service

    def issue_prefetch(line: int) -> None:
        if line in pb:
            return
        st.pb_inserts += 1
        st.prefetch_reads += 1
        service = dram_access(line, service_read=True, is_write=False)
        # The line is *resident* only after its DRAM round trip; a
        # demand read landing earlier finds it in flight (useful but
        # not covered — the exact MC merges it, it never hits the PB).
        pb[line] = (
            st.cpu_cycles / st.cpu_ratio
            + ctrl.overhead_mc_cycles + st.q_wait + service
        )
        if len(pb) > pb_capacity:
            pb.popitem(last=False)

    for gap, line, is_write in records:
        st.instructions += gap + 1
        st.cpu_cycles += gap + 1
        st.epoch_cpu += gap + 1
        st.cache_refs += 1

        dirty = lru.pop(line, None)
        if dirty is not None:  # cache hit
            lru[line] = dirty or is_write
            continue
        st.cache_misses += 1
        lru[line] = is_write
        if len(lru) > capacity:
            victim_line, victim_dirty = lru.popitem(last=False)
            if victim_dirty:
                dram_access(victim_line, service_read=False, is_write=True)
        if is_write:
            continue  # write-validate allocation: no read, no stall

        # ---- this read reaches the memory controller ----
        st.mc_reads += 1
        ps_covered = False
        ps_late_mc = 0.0  # residual wait when the PS prefetch is late
        now_cpu = st.cpu_cycles
        if ps.enabled:
            pos, last_cpu = ps_streams.pop(line, (0, now_cpu))
            pos += 1
            ps_streams[line + 1] = (pos, now_cpu)
            if len(ps_streams) > 4 * ps.max_streams:
                _, (dead_pos, _) = ps_streams.popitem(last=False)
                if dead_pos >= _PS_RAMP_POSITION:
                    ps_overshoot += ps_waste(dead_pos)
            ps_covered = pos >= _PS_RAMP_POSITION
            if ps_covered:
                # Timeliness: the prefetch for this line was issued
                # ~lead advances ago.  If the stream runs faster than
                # one DRAM round trip per lead window, the demand read
                # races its own prefetch: it still arrives at the MC
                # (an extra read the exact system counts) and pays the
                # residual latency instead of an L2 hit.
                lead_window = ps_lead * max(1, now_cpu - last_cpu)
                need = (
                    ctrl.overhead_mc_cycles + st.q_wait + table.read_hit
                ) * cpu_ratio
                if lead_window < need:
                    ps_late_mc = (need - lead_window) / cpu_ratio
                    st.mc_reads += 1
        if ps_covered:
            st.ps_reads += 1
        else:
            st.demand_reads += 1

        # ---- memory-side prefetcher (stream filter + SLH + PB) ----
        pb_covered = False
        pb_inflight_mc = 0.0  # residual wait on an in-flight prefetch
        if ms.enabled:
            st.epoch_reads_seen += 1
            now_mc = now_cpu / cpu_ratio
            ready = pb.pop(line, None)
            if ready is not None:
                st.pb_read_hits += 1  # the prefetch was useful either way
                if ready <= now_mc:
                    pb_covered = True
                    st.pb_hits += 1
                else:
                    # Prefetch still in flight: the read merges with it
                    # and waits out the remainder (not a coverage hit).
                    pb_inflight_mc = ready - now_mc
            slot = slots.pop(line, None)
            if slot is not None and slot.expires < st.mc_reads:
                slh.record_stream(slot.length)  # expired before this read
                slot = None
            if slot is not None:
                slot.length += 1
                slot.expires = st.mc_reads + life_ext
                slots[line + 1] = slot
                k = slot.length
            else:
                if len(slots) >= slot_limit:
                    expired = [
                        key for key, s in slots.items()
                        if s.expires < st.mc_reads
                    ]
                    for key in expired:
                        slh.record_stream(slots.pop(key).length)
                if len(slots) >= slot_limit:  # still full: evict oldest
                    victim_key = min(slots, key=lambda k: slots[k].expires)
                    slh.record_stream(slots.pop(victim_key).length)
                slots[line + 1] = _StreamSlot(st.mc_reads + life_init)
                k = 1  # ASD prefetches even 2-line streams from here
            want = (
                slh.should_prefetch(k, ms.degree)
                if ms.engine == "asd"
                else (True if ms.engine == "nextline" else k >= 2)
            )
            if want:
                for d in range(1, ms.degree + 1):
                    issue_prefetch(line + d)
            if st.epoch_reads_seen >= epoch_len:
                for slot in slots.values():
                    slh.record_stream_next_only(slot.length)
                slh.rollover()
                _epoch_advance(st, table, probes, slh)

        # ---- latency of this read ----
        if pb_covered:
            lat_mc = ctrl.overhead_mc_cycles + ctrl.pb_hit_latency_mc
        elif pb_inflight_mc:
            lat_mc = max(
                ctrl.overhead_mc_cycles + ctrl.pb_hit_latency_mc,
                pb_inflight_mc,
            )
        else:
            lat_mc = (
                ctrl.overhead_mc_cycles
                + st.q_wait
                + dram_access(line, service_read=True, is_write=False)
            )
        st.occ_integral += lat_mc
        if ps_covered:
            stall_cpu = (
                max(ps_cover_cost, ps_late_mc * cpu_ratio)
                if ps_late_mc
                else ps_cover_cost
            )
        else:
            stall_cpu = lat_mc * cpu_ratio
            st.lat_sum_demand += lat_mc
            st.lat_cnt_demand += 1
        st.cpu_cycles += int(stall_cpu)
        st.epoch_cpu += int(stall_cpu)
        if not ms.enabled and st.mc_reads % epoch_len == 0:
            _epoch_advance(st, table, probes, None)

    if ps.enabled:
        for dead_pos, _ in ps_streams.values():
            if dead_pos >= _PS_RAMP_POSITION:
                ps_overshoot += ps_waste(dead_pos)
        # Overshoot lines arrive at the MC as ordinary reads (diluting
        # coverage, exactly as the exact controller counts them) and
        # ride their streams' open rows: burst traffic without extra
        # activations; their queueing impact is folded into the
        # utilisation the epochs observed.
        st.mc_reads += ps_overshoot
        st.dram_reads += ps_overshoot

    # flush the trailing partial epoch so probes cover the tail
    if st.epoch_cpu and probes is not None:
        _epoch_advance(st, table, probes, slh)

    mc_cycles = max(1, round(st.cpu_cycles / cpu_ratio))
    regular = st.dram_reads + st.dram_writes - st.prefetch_reads
    prefetch_bus = st.prefetch_reads * table.bus_cycles
    total_bus = (st.dram_reads + st.dram_writes) * table.bus_cycles
    delayed = (
        round(regular * 0.5 * prefetch_bus / total_bus) if total_bus else 0
    )

    power_model = DRAMPowerModel(config.dram, config.dram_power)
    power_model.activations = st.activations
    power_model.read_bursts = st.dram_reads
    power_model.write_bursts = st.dram_writes
    power = power_model.finalize(mc_cycles)

    stats: Dict[str, float] = {
        "mc.reads_arrived": st.mc_reads,
        "mc.pb_hits_pre_caq": st.pb_hits,
        "mc.pb_hits_caq": 0,
        "mc.issued_regular": regular,
        "mc.delayed_regular": delayed,
        "mc.lat_sum_demand": st.lat_sum_demand,
        "mc.lat_cnt_demand": st.lat_cnt_demand,
        "mc.ticks": mc_cycles,
        "mc.occ_read_queue": st.occ_integral,
        "pb.inserts": st.pb_inserts,
        "pb.read_hits": st.pb_read_hits,
        "dram.issued_reads": st.dram_reads,
        "dram.issued_writes": st.dram_writes,
        "fast.epochs": st.epochs,
        "fast.cache_miss_rate": (
            st.cache_misses / st.cache_refs if st.cache_refs else 0.0
        ),
        "fast.row_hit_rate": (
            st.row_hits / st.row_refs if st.row_refs else 0.0
        ),
        "fast.ps_covered_reads": st.ps_reads,
        "fast.ps_overshoot_reads": ps_overshoot,
        "fast.prefetch_reads": st.prefetch_reads,
        "fast.final_queue_wait_mc": st.q_wait,
    }
    return RunResult(
        config_name=config.name,
        benchmark=traces[0].name if len(traces) == 1 else "smt",
        cycles=mc_cycles,
        instructions=st.instructions,
        cpu_ratio=cpu_ratio,
        stats=stats,
        power=power,
        fidelity={"tier": FIDELITY_FAST, "model_version": FAST_MODEL_VERSION},
    )


def simulate_job_fast(
    config: SystemConfig,
    benchmark: str,
    accesses: int,
    seed: int,
    threads: int = 1,
    probes: Optional[FastModelProbes] = None,
) -> RunResult:
    """Fast-tier twin of :func:`repro.experiments.runner.simulate_job`.

    Same trace resolution (and trace cache) as the exact path, so a
    fast/exact pair for one job always sees identical inputs.
    """
    from repro.experiments import runner

    if threads == 1:
        traces = [runner.get_trace(benchmark, accesses, seed)]
    else:
        traces = [
            runner.get_trace(benchmark, accesses, seed + t)
            for t in range(threads)
        ]
    result = predict(config, traces, probes=probes)
    result.benchmark = benchmark
    result.config_name = config.name
    return result
