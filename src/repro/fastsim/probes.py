"""Per-epoch probes for the fast model.

The cycle-accurate simulator exposes :mod:`repro.telemetry.probes`; the
fast model advances in the same SLH epochs, so it can expose the same
kind of per-epoch series — congestion (utilisation, queue wait), stream
behaviour (SLH bars, prefetch counts), and coverage — without any of
the tracer machinery (there are no discrete events to trace: the model
never executes them).

Samples ride :class:`repro.telemetry.series.Series` ring buffers, so
the bounded-storage guarantee and the ``(epoch, value)`` sample shape
match the telemetry package, and the JSON export is shaped like the
telemetry exporters' series files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping

from repro.telemetry.series import Series


class FastModelProbes:
    """Collects one sample per fast-model epoch.

    Pass an instance to :func:`repro.fastsim.model.predict` (or
    ``simulate_job_fast``); afterwards ``series`` maps each probed
    field to its :class:`~repro.telemetry.series.Series`.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.series: Dict[str, Series] = {}
        self.samples = 0

    def sample(self, epoch: int, values: Mapping[str, object]) -> None:
        """Record one epoch's worth of named values."""
        self.samples += 1
        for name, value in values.items():
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = Series(name, self.capacity)
            series.record(epoch, value)

    def rows(self, name: str) -> List[tuple]:
        """The ``(epoch, value)`` samples of one series (oldest first)."""
        series = self.series.get(name)
        return list(series.samples()) if series is not None else []

    def as_dict(self) -> Dict[str, object]:
        """JSON-shaped view: per-series samples plus drop counts."""
        return {
            "samples": self.samples,
            "series": {
                name: {
                    "dropped": series.dropped,
                    "values": [
                        {"epoch": epoch, "value": value}
                        for epoch, value in series.samples()
                    ],
                }
                for name, series in sorted(self.series.items())
            },
        }

    def export_json(self, path: str) -> None:
        """Write :meth:`as_dict` as indented JSON (telemetry-style)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        return (
            f"{self.samples} epoch samples across "
            f"{len(self.series)} series"
        )
