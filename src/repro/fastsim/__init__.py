"""Fast analytic simulation tier with validated error bars.

The package has four layers (docs/fidelity.md walks the hierarchy):

* :mod:`~repro.fastsim.version` — tier names and the fast-model
  version that keys fast results in the store;
* :mod:`~repro.fastsim.banktables` + :mod:`~repro.fastsim.model` —
  the analytic model itself (milliseconds per grid cell);
* :mod:`~repro.fastsim.gate` — the FidelityGate that measures the
  model's error against the exact simulator and turns it into
  per-metric error bars;
* :mod:`~repro.fastsim.orchestrator` — the ``exact | fast | auto``
  sweep policies built from the two tiers.
"""

# Only the leaf version module is imported eagerly: the sweep engine
# imports it during repro.experiments' own init, and pulling the model
# or orchestrator in at that point would close an import cycle
# (orchestrator -> sweep -> fastsim).  Everything else resolves lazily
# through PEP 562 module __getattr__.
from repro.fastsim.version import (
    FAST_MODEL_VERSION,
    FIDELITY_AUTO,
    FIDELITY_EXACT,
    FIDELITY_FAST,
    JOB_FIDELITIES,
    SWEEP_FIDELITIES,
)

_LAZY = {
    "CalibrationRecord": "repro.fastsim.gate",
    "FidelityGate": "repro.fastsim.gate",
    "FidelityOutcome": "repro.fastsim.orchestrator",
    "run_fidelity_sweep": "repro.fastsim.orchestrator",
    "FastModelProbes": "repro.fastsim.probes",
    "predict": "repro.fastsim.model",
    "simulate_job_fast": "repro.fastsim.model",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(list(globals()) + list(_LAZY))


__all__ = [
    "CalibrationRecord",
    "FidelityGate",
    "FidelityOutcome",
    "FastModelProbes",
    "FAST_MODEL_VERSION",
    "FIDELITY_AUTO",
    "FIDELITY_EXACT",
    "FIDELITY_FAST",
    "JOB_FIDELITIES",
    "SWEEP_FIDELITIES",
    "predict",
    "run_fidelity_sweep",
    "simulate_job_fast",
]
