"""The FidelityGate: validated error bars for fast-model predictions.

A fast prediction without a quantified error is a guess.  The gate
turns a fast sweep into a *calibrated* one:

1. **Deterministic sampling** — a fixed fraction of the sweep's job
   keys is selected for validation by ranking SHA-256 digests of the
   keys (no RNG, no host state: the same sweep always validates the
   same points, on any machine);
2. **Cross-validation** — the selected points also run on the
   cycle-accurate simulator, and each gated metric's relative error is
   measured on every sample;
3. **Error bars** — the per-metric bound (worst observed error times a
   safety margin, plus a small floor) is attached to *every* fast
   result in the sweep as ``result.fidelity["error_bars"]``, together
   with the calibration summary it came from.

The bound is constructed to hold on the validation sample by
definition (``bound >= max observed error``); the margin and floor
cover the unsampled points.  ``tests/integration/test_fidelity.py``
asserts the in-sample property over the figure-5 grid, and
:mod:`repro.fastsim.orchestrator` re-checks it on every sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.fastsim.version import FAST_MODEL_VERSION
from repro.system.results import RunResult

#: Metrics the gate calibrates, in report order.  Each is a property
#: of :class:`~repro.system.results.RunResult`, except ``energy_uj``
#: which reads the power report.
GATED_METRICS = (
    "cycles",
    "ipc",
    "coverage",
    "useful_prefetch_fraction",
    "energy_uj",
)

#: Relative-error denominators are floored per metric so near-zero
#: exact values (e.g. coverage of an NP run) don't explode the ratio:
#: below the floor, errors are measured in absolute units of the floor.
DENOMINATOR_FLOORS: Mapping[str, float] = {
    "cycles": 1.0,
    "ipc": 1e-3,
    "coverage": 0.02,
    "useful_prefetch_fraction": 0.02,
    "energy_uj": 1.0,
}

#: The advertised bound is the worst observed error times this margin
#: (covering unsampled points) plus :data:`BOUND_FLOOR`.
BOUND_MARGIN = 1.25
BOUND_FLOOR = 0.01

#: Default validation-sample sizing.
DEFAULT_FRACTION = 0.2
DEFAULT_MIN_SAMPLES = 3


def metric_value(result: RunResult, metric: str) -> float:
    """Extract one gated metric from a result (0.0 when absent)."""
    if metric == "energy_uj":
        return float(result.power.energy_uj) if result.power else 0.0
    value = getattr(result, metric)
    return float(value)


def relative_error(fast: RunResult, exact: RunResult, metric: str) -> float:
    """|fast - exact| over the floored magnitude of the exact value."""
    exact_value = metric_value(exact, metric)
    fast_value = metric_value(fast, metric)
    floor = DENOMINATOR_FLOORS.get(metric, 1e-9)
    return abs(fast_value - exact_value) / max(abs(exact_value), floor)


@dataclasses.dataclass(frozen=True)
class CalibrationRecord:
    """One sweep's measured fast-vs-exact error distribution.

    ``errors`` maps each gated metric to its observed ``max`` and
    ``mean`` relative error and the derived ``bound`` — the error bar
    advertised on every fast result of the sweep.
    """

    samples: int
    fraction: float
    model_version: int
    errors: Mapping[str, Mapping[str, float]]

    def bound(self, metric: str) -> float:
        """The advertised error bar for one metric."""
        return float(self.errors[metric]["bound"])

    def error_bars(self) -> Dict[str, float]:
        """All advertised bounds, keyed by metric."""
        return {metric: self.bound(metric) for metric in self.errors}

    def as_dict(self) -> Dict[str, object]:
        """JSON-shaped view (stored inside result payloads)."""
        return {
            "samples": self.samples,
            "fraction": self.fraction,
            "model_version": self.model_version,
            "errors": {
                metric: dict(stats) for metric, stats in self.errors.items()
            },
        }

    def summary(self) -> str:
        """One line per metric: ``metric: max err X% -> bar Y%``."""
        parts = [
            f"{metric} ±{self.bound(metric) * 100:.1f}%"
            for metric in GATED_METRICS
            if metric in self.errors
        ]
        return (
            f"calibrated on {self.samples} exact sample(s): "
            + ", ".join(parts)
        )


class FidelityGate:
    """Selects validation points and calibrates error bars.

    ``fraction`` of a sweep's jobs (at least ``min_samples``, at most
    all of them) is validated against the exact simulator.  ``salt``
    perturbs the selection without touching job identities — sweeps
    that want non-overlapping validation sets use distinct salts.
    """

    def __init__(
        self,
        fraction: float = DEFAULT_FRACTION,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        salt: str = "",
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.fraction = fraction
        self.min_samples = min_samples
        self.salt = salt

    # ------------------------------------------------------------------
    def sample_size(self, population: int) -> int:
        """How many of ``population`` jobs get validated."""
        if population <= 0:
            return 0
        return min(
            population,
            max(self.min_samples, math.ceil(self.fraction * population)),
        )

    def select(self, job_keys: Sequence[str]) -> List[int]:
        """Indices of the jobs chosen for exact validation.

        Jobs are ranked by the SHA-256 digest of ``salt + job key``;
        the lowest digests win.  Pure function of the inputs — every
        process that prepares the same sweep agrees on the sample.
        """
        ranked = sorted(
            range(len(job_keys)),
            key=lambda index: (
                hashlib.sha256(
                    (self.salt + str(job_keys[index])).encode("utf-8")
                ).hexdigest(),
                index,
            ),
        )
        return sorted(ranked[: self.sample_size(len(job_keys))])

    # ------------------------------------------------------------------
    def calibrate(
        self, pairs: Sequence[Tuple[RunResult, RunResult]]
    ) -> CalibrationRecord:
        """Measure per-metric error distributions over (fast, exact) pairs."""
        if not pairs:
            raise ValueError("cannot calibrate on an empty validation set")
        errors: Dict[str, Dict[str, float]] = {}
        for metric in GATED_METRICS:
            observed = [
                relative_error(fast, exact, metric) for fast, exact in pairs
            ]
            worst = max(observed)
            errors[metric] = {
                "max": worst,
                "mean": sum(observed) / len(observed),
                "bound": worst * BOUND_MARGIN + BOUND_FLOOR,
            }
        return CalibrationRecord(
            samples=len(pairs),
            fraction=self.fraction,
            model_version=FAST_MODEL_VERSION,
            errors=errors,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def attach(result: RunResult, record: CalibrationRecord) -> RunResult:
        """Stamp a fast result with the sweep's calibration.

        Mutates (and returns) ``result``: its ``fidelity`` dict gains
        the per-metric ``error_bars`` and the calibration summary.
        Exact results pass through untouched — they carry no error.
        """
        if result.fidelity is None:
            return result
        result.fidelity = dict(result.fidelity)
        result.fidelity["error_bars"] = record.error_bars()
        result.fidelity["calibration"] = record.as_dict()
        return result


def near_decision_boundary(
    fast: RunResult,
    baseline: RunResult,
    record: CalibrationRecord,
) -> bool:
    """Is this point's gain-vs-baseline inside the model's error band?

    The sweeps' decision metric is the paper's performance gain
    (``fast.gain_vs(baseline)``, in percent).  With relative cycle
    errors up to ``b_f`` on the point and ``b_b`` on the baseline, the
    gain is uncertain by roughly ``(b_f + b_b) * 100`` percentage
    points; a fast prediction whose |gain| falls inside that band
    cannot be trusted to even *sign* the comparison — the auto tier
    escalates exactly these points to the exact simulator.
    """
    bound_fast = record.bound("cycles")
    bound_base = bound_fast if baseline.fidelity_tier == "fast" else 0.0
    band_pct = (bound_fast + bound_base) * 100.0
    return abs(fast.gain_vs(baseline)) <= band_pct
