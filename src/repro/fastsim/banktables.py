"""Precomputed per-policy DRAM bank-timing tables.

The cycle-accurate device walks the ACT/CAS/PRE state machine command
by command.  The fast model only needs the *service time* each access
class costs under a given page policy, and those are pure functions of
:class:`~repro.common.config.DRAMTimingConfig` — so they are computed
once per (timing, page-policy) identity and cached, exactly the
"precomputed bank-timing table" half of the ROADMAP's two-fidelity
route.

An access falls into one of three classes:

* ``row_hit``   — the bank already holds the row: CAS + burst;
* ``row_miss``  — a different row is open: PRE + ACT + CAS + burst;
* ``row_empty`` — the bank is precharged (closed-page policy, or first
  touch): ACT + CAS + burst.

Writes substitute the write CAS latency.  ``bus_cycles`` is the data
bus occupancy every access adds regardless of bank state — the term
that bounds throughput when many banks are busy at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.config import DRAMConfig


@dataclass(frozen=True)
class BankTimingTable:
    """Service times (MC cycles) for one DRAM config + page policy."""

    page_policy: str
    read_hit: int
    read_miss: int
    read_empty: int
    write_hit: int
    write_miss: int
    write_empty: int
    bus_cycles: int
    banks: int  # total banks across ranks (parallel servers)
    row_lines: int  # cache lines per DRAM row (locality granule)

    def read_service(self, state: str) -> int:
        """Service cycles of a read against bank ``state``."""
        if state == "hit":
            return self.read_hit
        if state == "miss":
            return self.read_miss
        return self.read_empty

    def write_service(self, state: str) -> int:
        if state == "hit":
            return self.write_hit
        if state == "miss":
            return self.write_miss
        return self.write_empty


_tables: Dict[Tuple, BankTimingTable] = {}


def _identity(dram: DRAMConfig) -> Tuple:
    t = dram.timing
    return (
        dram.page_policy, dram.ranks, dram.banks_per_rank, dram.row_lines,
        t.t_rcd, t.t_cl, t.t_rp, t.t_ras, t.t_rc, t.t_wl, t.t_wr,
        t.burst_cycles,
    )


def bank_table(dram: DRAMConfig) -> BankTimingTable:
    """The (cached) timing table for one DRAM configuration."""
    key = _identity(dram)
    table = _tables.get(key)
    if table is not None:
        return table
    t = dram.timing
    burst = t.burst_cycles
    read_empty = t.t_rcd + t.t_cl + burst
    read_miss = t.t_rp + read_empty
    read_hit = t.t_cl + burst
    write_empty = t.t_rcd + t.t_wl + burst
    write_miss = t.t_rp + write_empty
    write_hit = t.t_wl + burst
    if dram.page_policy == "closed":
        # Every access re-opens its row; there are no hits or conflicts.
        read_hit = read_miss = read_empty
        write_hit = write_miss = write_empty
    table = BankTimingTable(
        page_policy=dram.page_policy,
        read_hit=read_hit,
        read_miss=read_miss,
        read_empty=read_empty,
        write_hit=write_hit,
        write_miss=write_miss,
        write_empty=write_empty,
        bus_cycles=burst,
        banks=dram.ranks * dram.banks_per_rank,
        row_lines=dram.row_lines,
    )
    _tables[key] = table
    return table


def clear_tables() -> None:
    """Drop the cache (tests use this for isolation)."""
    _tables.clear()
