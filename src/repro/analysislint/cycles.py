"""CYC001 — every cycle-variable write must integrate skipped time.

PR 3's three fast-forward bugs were all one invariant: *every simulated
MC cycle — executed or jumped — must land in the ``ticks``/``occ_*``
per-cycle integrals exactly once*.  The bugs got in because advancing a
clock variable and accounting for the advance are separate statements
that refactors can split.

The rule: inside the simulated machine, any function that stores to a
cycle variable (a name or attribute spelled ``now``, ``cycle``, or
``_now``, or any ``+=``-style bulk advance whose right-hand side
mentions a skip/jump amount) must, in the same function, either

* write the ``ticks`` counter or an ``occ_*`` counter (through
  ``Stats.bump`` or the raw mapping), or
* call an accounting method (``tick``, ``tick_reference``,
  ``bulk_tick``, ``consume_wait``, ``consume_bulk``) — directly, on a
  sub-object, or through a local bound-method alias, or
* carry a ``# lint: no-integral`` waiver on the storing line or on its
  ``def`` line — the explicit claim that the function moves a clock
  without owning its accounting (pure queries that shadow ``now``
  locally, for example).

``__init__`` methods are exempt: zero-initialising a clock is not a
time advance.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysislint.core import Finding, SourceFile, SourceTree
from repro.analysislint.rules import SIM_PACKAGES, Rule
from repro.analysislint.statsmodel import scan_stats_usage

#: Store targets treated as simulation clocks.
CYCLE_NAMES = {"now", "cycle", "_now"}

#: RHS names that mark an augmented assign as a bulk advance.
BULK_NAMES = {"skip", "skipped", "cycles", "jump", "ticks"}

#: Calling any of these discharges the integration obligation.
ACCOUNTING_METHODS = {
    "tick",
    "tick_reference",
    "bulk_tick",
    "consume_wait",
    "consume_bulk",
}

#: Stats keys that count as touching the per-cycle integrals.
INTEGRAL_KEY = "ticks"
INTEGRAL_PREFIX = "occ_"


def _target_cycle_name(target: ast.AST) -> str:
    if isinstance(target, ast.Name) and target.id in CYCLE_NAMES:
        return target.id
    if isinstance(target, ast.Attribute) and target.attr in CYCLE_NAMES:
        return target.attr
    return ""


def _mentions_bulk(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in BULK_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in BULK_NAMES:
            return True
    return False


class CycleAccountingRule(Rule):
    """CYC001: a write to a cycle variable must integrate into the
    ``ticks``/``occ_*`` counters, delegate to an accounting method,
    or carry a ``# lint: no-integral`` waiver."""

    id = "CYC001"
    title = "cycle-variable writes must integrate into ticks/occ_*"
    shorthand = "no-integral"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in tree.in_packages(SIM_PACKAGES):
            findings.extend(self._check_file(sf))
        return findings

    def _check_file(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        integral_writers = self._integral_writers(sf)
        for func in sf.functions():
            if func.name == "__init__":
                continue
            stores = self._cycle_stores(func)
            if not stores:
                continue
            qual = sf.qualname(func)
            if qual in integral_writers or self._calls_accounting(func):
                continue
            if sf.waived(func.lineno, self.id, self.shorthand):
                continue
            unwaived = [
                (line, name)
                for line, name in stores
                if not sf.waived(line, self.id, self.shorthand)
            ]
            if not unwaived:
                continue
            line, name = unwaived[0]
            findings.append(
                self.finding(
                    sf.relpath,
                    line,
                    f"writes cycle variable '{name}' but never touches the "
                    f"'{INTEGRAL_KEY}'/'{INTEGRAL_PREFIX}*' integrals nor "
                    "calls an accounting method "
                    f"({', '.join(sorted(ACCOUNTING_METHODS))})",
                    qual,
                )
            )
        return findings

    @staticmethod
    def _cycle_stores(func: ast.FunctionDef) -> List:
        """(line, varname) for each cycle-variable store in the body."""
        stores = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _target_cycle_name(target)
                    if name:
                        stores.append((node.lineno, name))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                name = _target_cycle_name(node.target)
                if name:
                    stores.append((node.lineno, name))
                elif isinstance(node, ast.AugAssign) and _mentions_bulk(
                    node.value
                ):
                    # `x += skip`-shaped bulk advance under another name
                    tgt = node.target
                    alt = (
                        tgt.id
                        if isinstance(tgt, ast.Name)
                        else tgt.attr
                        if isinstance(tgt, ast.Attribute)
                        else ""
                    )
                    if alt in ("t", "clock", "when"):
                        stores.append((node.lineno, alt))
        return stores

    @staticmethod
    def _integral_writers(sf: SourceFile) -> Set[str]:
        """Qualnames of functions that write ticks/occ_* keys."""
        writers: Set[str] = set()
        for use in scan_stats_usage(sf).writes():
            if use.kind == "literal" and any(
                k == INTEGRAL_KEY or k.startswith(INTEGRAL_PREFIX)
                for k in use.keys
            ):
                writers.add(use.symbol)
        return writers

    @staticmethod
    def _calls_accounting(func: ast.FunctionDef) -> bool:
        """Does the body call tick/bulk_tick/... (alias-aware)?"""
        aliases: Dict[str, str] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr in ACCOUNTING_METHODS
            ):
                aliases[node.targets[0].id] = node.value.attr
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in ACCOUNTING_METHODS
            ):
                return True
            if isinstance(func_expr, ast.Name) and func_expr.id in aliases:
                return True
        return False
