"""Per-function control-flow graphs and light dataflow analyses.

The original twelve rules are single-statement pattern checks; the
CONC/ATO rule families have to answer *path* questions — "is this
thread joined on every way out of the function?", "does this socket get
closed when the body raises?" — which need a real control-flow graph.
This module builds one per function, statement-granular, over the
already-parsed :class:`~repro.analysislint.core.SourceFile` AST:

* :func:`build_cfg` — entry/exit nodes plus one node per statement,
  with edges for ``if``/``while``/``for``/``try``/``with``/``return``/
  ``raise``/``break``/``continue``.  ``try`` bodies get exceptional
  edges into their handlers, and ``return``/``raise`` are routed
  through every enclosing ``finally`` — so a release that lives in a
  ``finally`` block correctly dominates early exits.
* :func:`reaching_definitions` — the classic forward may-analysis over
  that CFG; used to tell whether a tracked binding is still the
  acquisition when a release site is reached.
* :func:`can_reach_exit` — the existential path query the obligation
  rules are built on: is there a path from a node to function exit that
  avoids every "discharging" node?
* :func:`escaping_names` — names whose value leaves the function
  (returned, yielded, stored on an object, passed to a call), which
  transfers the cleanup obligation to the caller.
* :func:`called_self_methods` — the one-level ``self.X(...)`` call
  expansion the PAR rules pioneered, factored here so every
  flow-adjacent rule shares it.

Exceptions raised by arbitrary calls are *not* modelled as edges;
``try``/``with`` are the repo's sanctioned cleanup idioms and both are.
That keeps the graph small and the rules' false-positive rate near
zero — see docs/linting.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "CFG",
    "CFGNode",
    "assigned_names",
    "build_cfg",
    "called_self_methods",
    "can_reach_exit",
    "escaping_names",
    "reaching_definitions",
    "walk_stmt_header",
]


@dataclass
class CFGNode:
    """One statement (or the synthetic entry/exit/finally markers)."""

    id: int
    stmt: Optional[ast.AST]  # None for synthetic nodes
    label: str = ""  # "entry" | "exit" | "finally" | ""
    succs: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    func: ast.FunctionDef
    nodes: List[CFGNode] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def node_of(self, stmt: ast.AST) -> Optional[int]:
        """The node id holding ``stmt`` (header statements only)."""
        for node in self.nodes:
            if node.stmt is stmt:
                return node.id
        return None

    def preds(self) -> Dict[int, List[int]]:
        """Predecessor lists (computed on demand; the builder stores succs)."""
        out: Dict[int, List[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                out[succ].append(node.id)
        return out


@dataclass
class _Loop:
    head: int
    breaks: List[int] = field(default_factory=list)


@dataclass
class _FinallyFrame:
    """Abrupt-exit sources waiting to be routed through a ``finally``."""

    abrupts: List[int] = field(default_factory=list)


class _Builder:
    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.cfg = CFG(func=func)
        self._loops: List[_Loop] = []
        self._finally_frames: List[_FinallyFrame] = []
        self._exit_sources: List[int] = []

    # -- plumbing -----------------------------------------------------
    def _new(self, stmt: Optional[ast.AST] = None, label: str = "") -> int:
        node = CFGNode(id=len(self.cfg.nodes), stmt=stmt, label=label)
        self.cfg.nodes.append(node)
        return node.id

    def _edge(self, src: int, dst: int) -> None:
        succs = self.cfg.nodes[src].succs
        if dst not in succs:
            succs.append(dst)

    def _to_exit(self, src: int) -> None:
        """Route an abrupt exit through enclosing ``finally`` frames."""
        if self._finally_frames:
            self._finally_frames[-1].abrupts.append(src)
        else:
            self._exit_sources.append(src)

    # -- construction -------------------------------------------------
    def build(self) -> CFG:
        entry = self._new(label="entry")
        self.cfg.entry = entry
        out = self._stmts(self.func.body, [entry])
        exit_id = self._new(label="exit")
        self.cfg.exit = exit_id
        for src in out + self._exit_sources:
            self._edge(src, exit_id)
        return self.cfg

    def _stmts(self, body: List[ast.stmt], preds: List[int]) -> List[int]:
        """Build ``body``; returns the nodes that fall through its end."""
        for stmt in body:
            node = self._new(stmt)
            for pred in preds:
                self._edge(pred, node)
            preds = self._one(stmt, node)
            if not preds:  # unreachable code after return/raise/...
                break
        return preds

    def _one(self, stmt: ast.stmt, node: int) -> List[int]:
        if isinstance(stmt, ast.If):
            body_out = self._stmts(stmt.body, [node])
            if stmt.orelse:
                orelse_out = self._stmts(stmt.orelse, [node])
            else:
                orelse_out = [node]
            return body_out + orelse_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            loop = _Loop(head=node)
            self._loops.append(loop)
            body_out = self._stmts(stmt.body, [node])
            for src in body_out:
                self._edge(src, node)
            self._loops.pop()
            orelse_out = (
                self._stmts(stmt.orelse, [node]) if stmt.orelse else [node]
            )
            return loop.breaks + orelse_out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._stmts(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._to_exit(node)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(node, self._loops[-1].head)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [node]  # nested definitions are opaque statements
        return [node]

    def _try(self, stmt: ast.Try, node: int) -> List[int]:
        frame = _FinallyFrame() if stmt.finalbody else None
        if frame is not None:
            self._finally_frames.append(frame)
        first_body_node = len(self.cfg.nodes)
        body_out = self._stmts(stmt.body, [node])
        body_nodes = list(range(first_body_node, len(self.cfg.nodes)))
        handler_outs: List[int] = []
        for handler in stmt.handlers:
            hnode = self._new(handler)
            # any statement of the body may raise into this handler
            self._edge(node, hnode)
            for src in body_nodes:
                self._edge(src, hnode)
            handler_outs.extend(self._stmts(handler.body, [hnode]))
        orelse_out = (
            self._stmts(stmt.orelse, body_out) if stmt.orelse else body_out
        )
        normal_out = orelse_out + handler_outs
        if frame is None:
            return normal_out
        self._finally_frames.pop()
        fin_marker = self._new(label="finally")
        for src in normal_out + frame.abrupts:
            self._edge(src, fin_marker)
        fin_out = self._stmts(stmt.finalbody, [fin_marker])
        if frame.abrupts:
            # the abrupt paths continue outward after the finally runs
            for src in fin_out:
                self._to_exit(src)
        return fin_out


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Statement-level CFG of ``func`` (see the module docstring)."""
    return _Builder(func).build()


# ---------------------------------------------------------------------
# dataflow: reaching definitions
# ---------------------------------------------------------------------
def assigned_names(stmt: Optional[ast.AST]) -> Set[str]:
    """Simple names (re)bound by the *header* of one statement node.

    Compound statements contribute only their own binding (the ``for``
    target, the ``with ... as`` name, the handler name) — their bodies
    are separate CFG nodes.
    """
    names: Set[str] = set()

    def targets(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)
        elif isinstance(node, ast.Starred):
            targets(node.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.add(stmt.name)
    return names


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Tuple[str, int]]]:
    """IN sets of the classic forward may-analysis: per node, the
    ``(name, defining-node)`` pairs that may reach it.  Function
    parameters are definitions at the entry node."""
    gen: Dict[int, Set[Tuple[str, int]]] = {}
    killed_names: Dict[int, Set[str]] = {}
    for node in cfg.nodes:
        names = assigned_names(node.stmt)
        if node.id == cfg.entry:
            args = cfg.func.args
            params = [
                a.arg
                for a in (
                    list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                )
            ]
            if args.vararg:
                params.append(args.vararg.arg)
            if args.kwarg:
                params.append(args.kwarg.arg)
            names = names | set(params)
        gen[node.id] = {(name, node.id) for name in names}
        killed_names[node.id] = names
    preds = cfg.preds()
    in_sets: Dict[int, Set[Tuple[str, int]]] = {n.id: set() for n in cfg.nodes}
    out_sets: Dict[int, Set[Tuple[str, int]]] = {n.id: set() for n in cfg.nodes}
    work = [n.id for n in cfg.nodes]
    while work:
        nid = work.pop()
        new_in: Set[Tuple[str, int]] = set()
        for p in preds[nid]:
            new_in |= out_sets[p]
        survivors = {
            d for d in new_in if d[0] not in killed_names[nid]
        }
        new_out = survivors | gen[nid]
        in_sets[nid] = new_in
        if new_out != out_sets[nid]:
            out_sets[nid] = new_out
            work.extend(self_succ for self_succ in cfg.nodes[nid].succs)
    return in_sets


def walk_stmt_header(stmt: Optional[ast.AST]):
    """Walk one CFG statement node's *own* expressions.

    Compound statements (``if``/``while``/``for``/``with``/``try``) own
    only their header — their bodies are separate CFG nodes, so a stop
    predicate that walked the whole subtree would wrongly credit a
    nested ``join()``/``close()`` to the header node and hide the path
    that branches around it.  Nested function/class definitions are
    opaque.
    """
    if stmt is None:
        return
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield from ast.walk(stmt.type)
    elif isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    else:
        yield from ast.walk(stmt)


# ---------------------------------------------------------------------
# path queries
# ---------------------------------------------------------------------
def can_reach_exit(
    cfg: CFG, start: int, stop: Callable[[CFGNode], bool]
) -> bool:
    """Is there a path from ``start`` to exit avoiding ``stop`` nodes?

    ``start`` itself is not tested against ``stop`` — the query is
    about what happens *after* the obligation-creating statement.
    """
    seen = {start}
    stack = list(cfg.nodes[start].succs)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = cfg.nodes[nid]
        if nid == cfg.exit:
            return True
        if stop(node):
            continue
        stack.extend(node.succs)
    return False


# ---------------------------------------------------------------------
# escape analysis
# ---------------------------------------------------------------------
def escaping_names(func: ast.FunctionDef) -> Set[str]:
    """Names whose bound value may outlive the function call.

    Conservative (a name escaping kills the cleanup obligation, so
    over-approximating escapes only *silences* findings, never invents
    them): returned or yielded, stored into an attribute/subscript/
    global container, or passed as an argument to any call.  Being the
    *receiver* of a method call (``v.close()``) is not an escape.
    """
    escapes: Set[str] = set()

    def names_in(node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        return {
            n.id
            for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }

    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            escapes |= names_in(node.value)
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                escapes |= names_in(node.value)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                escapes |= names_in(node.value)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                escapes |= names_in(arg)
            for kw in node.keywords:
                escapes |= names_in(kw.value)
    return escapes


# ---------------------------------------------------------------------
# one-level call expansion (shared with the PAR rules)
# ---------------------------------------------------------------------
def called_self_methods(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.X(...)`` calls plus locally aliased bound methods
    (``f = self.X`` followed by ``f(...)``)."""
    aliases: Dict[str, str] = {}
    called: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "self"
        ):
            aliases[node.targets[0].id] = node.value.attr
        if isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id == "self"
            ):
                called.add(func_expr.attr)
            elif isinstance(func_expr, ast.Name) and func_expr.id in aliases:
                called.add(aliases[func_expr.id])
    return called
