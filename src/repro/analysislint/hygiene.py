"""HYG rules — hot-path object hygiene.

The event loop allocates tens of thousands of small objects per run
(commands, issue results, evictions); a dataclass without ``slots``
costs a dict per instance and a dict lookup per field access on the
hottest lines in the simulator.  And nothing executed per tick may
consult the host's clock (see also DET001 — this rule covers the
``datetime`` module family, which the determinism rule leaves to it).

* ``HYG001`` — every ``@dataclass`` in ``repro.{controller,dram,
  prefetch}`` must declare ``slots=True`` (waiver: ``# lint: no-slots``
  on the decorator line, for classes that genuinely need ``__dict__``).
* ``HYG002`` — no ``datetime.now()``-style calls anywhere in the
  simulated machine packages.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysislint.core import Finding, SourceTree, call_name
from repro.analysislint.rules import Rule

_DATETIME_CALLS = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


class SlotsRule(Rule):
    """HYG001: hot-path dataclasses must declare ``slots=True``."""

    id = "HYG001"
    title = "hot-path dataclasses must declare slots"
    shorthand = "no-slots"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in tree.in_packages(set(self.config.hot_packages)):
            for cls in sf.classes():
                decorator = self._dataclass_decorator(cls)
                if decorator is None:
                    continue
                if self._has_slots(decorator):
                    continue
                line = decorator.lineno
                if sf.waived(line, self.id, self.shorthand) or sf.waived(
                    cls.lineno, self.id, self.shorthand
                ):
                    continue
                findings.append(
                    self.finding(
                        sf.relpath,
                        line,
                        f"dataclass {cls.name} in a hot-path package "
                        "without slots=True — a __dict__ per instance on "
                        "the per-tick allocation path",
                        cls.name,
                    )
                )
        return findings

    @staticmethod
    def _dataclass_decorator(cls: ast.ClassDef):
        for dec in cls.decorator_list:
            if isinstance(dec, ast.Name) and dec.id == "dataclass":
                return dec
            if (
                isinstance(dec, ast.Call)
                and call_name(dec) in ("dataclass", "dataclasses.dataclass")
            ):
                return dec
            if isinstance(dec, ast.Attribute) and dec.attr == "dataclass":
                return dec
        return None

    @staticmethod
    def _has_slots(decorator: ast.AST) -> bool:
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass
        for kw in decorator.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        return False


class HotPathDatetimeRule(Rule):
    """HYG002: no ``datetime.now()``-style calls in the simulated machine."""

    id = "HYG002"
    title = "no datetime.now()-style calls in the simulated machine"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in tree.in_packages(set(self.config.sim_packages)):
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in _DATETIME_CALLS and not sf.waived(node, self.id):
                    findings.append(
                        self.finding(
                            sf.relpath,
                            node.lineno,
                            f"wall-clock call {name}() — nothing the event "
                            "loop executes may consult the host clock",
                            sf.qualname(node),
                        )
                    )
        return findings
