"""PAR rules — the event-driven and reference tick paths must agree.

PR 3 split the main loop: ``tick`` is the guarded/hot path,
``tick_reference`` the literal per-cycle oracle.  The golden equality
tests prove *behavioural* equality on the suites they run; these rules
prove *structural* equality on every class that defines both paths, so
a refactor that adds a counter or a tracer event to one body and not
the other is caught at lint time, before any golden test runs:

* ``PAR001`` — both bodies must write the same statically-extractable
  set of stats keys;
* ``PAR002`` — both bodies must emit the same set of tracer event
  kinds.

Both checks look one call level deep within the class: a key bumped by
``self._reorder_to_caq`` counts for whichever body calls it, so shared
helpers do not create false divergence, and moving an emit into a
helper used by only one path is still caught.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysislint.core import Finding, SourceFile, SourceTree
from repro.analysislint.rules import Rule
from repro.analysislint.statsmodel import scan_stats_usage

#: The dual-path method pair this rule keys on.
PAIR = ("tick", "tick_reference")


def _class_pairs(sf: SourceFile) -> List[Tuple[ast.ClassDef, Dict[str, ast.FunctionDef]]]:
    """Classes defining both paths, with their full method tables."""
    out = []
    for cls in sf.classes():
        methods = {
            node.name: node
            for node in cls.body
            if isinstance(node, ast.FunctionDef)
        }
        if all(name in methods for name in PAIR):
            out.append((cls, methods))
    return out


def _called_self_methods(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.X(...)`` calls plus locally aliased bound methods
    (``f = self.X`` followed by ``f(...)``)."""
    aliases: Dict[str, str] = {}
    called: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "self"
        ):
            aliases[node.targets[0].id] = node.value.attr
        if isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id == "self"
            ):
                called.add(func_expr.attr)
            elif isinstance(func_expr, ast.Name) and func_expr.id in aliases:
                called.add(aliases[func_expr.id])
    return called


def _direct_event_kinds(func: ast.FunctionDef) -> Set[str]:
    """Tracer event classes constructed inside ``X.emit(Kind(...))``."""
    kinds: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
        ):
            kinds.add(node.args[0].func.id)
    return kinds


class _PairAnalysis:
    """Per-class key/event sets for both paths, shared by PAR001/2."""

    def __init__(
        self, sf: SourceFile, cls: ast.ClassDef, methods: Dict[str, ast.FunctionDef]
    ) -> None:
        self.sf = sf
        self.cls = cls
        usage = scan_stats_usage(sf)
        # literal keys written per method qualname
        key_writes: Dict[str, Set[str]] = {}
        for use in usage.writes():
            if use.kind != "literal":
                continue
            key_writes.setdefault(use.symbol, set()).update(use.keys)
        self.keys: Dict[str, Set[str]] = {}
        self.events: Dict[str, Set[str]] = {}
        for name in PAIR:
            func = methods[name]
            qual = sf.qualname(func)
            keys = set(key_writes.get(qual, ()))
            events = _direct_event_kinds(func)
            for callee_name in _called_self_methods(func):
                callee = methods.get(callee_name)
                if callee is None:
                    continue
                keys.update(key_writes.get(sf.qualname(callee), ()))
                events.update(_direct_event_kinds(callee))
            self.keys[name] = keys
            self.events[name] = events


def _analyses(tree: SourceTree) -> List[_PairAnalysis]:
    out = []
    for sf in tree:
        for cls, methods in _class_pairs(sf):
            out.append(_PairAnalysis(sf, cls, methods))
    return out


def _describe_divergence(a: Set[str], b: Set[str]) -> str:
    only_tick = sorted(a - b)
    only_ref = sorted(b - a)
    parts = []
    if only_tick:
        parts.append(f"only in tick: {', '.join(only_tick)}")
    if only_ref:
        parts.append(f"only in tick_reference: {', '.join(only_ref)}")
    return "; ".join(parts)


class StatsParityRule(Rule):
    """PAR001: ``tick`` and ``tick_reference`` write the same stat keys."""

    id = "PAR001"
    title = "tick and tick_reference must write the same stats keys"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for pa in _analyses(tree):
            tick_keys = pa.keys[PAIR[0]]
            ref_keys = pa.keys[PAIR[1]]
            if tick_keys == ref_keys:
                continue
            line = pa.cls.lineno
            if pa.sf.waived(line, self.id):
                continue
            findings.append(
                self.finding(
                    pa.sf.relpath,
                    line,
                    f"{pa.cls.name}: dual-path stats divergence — "
                    + _describe_divergence(tick_keys, ref_keys),
                    pa.cls.name,
                )
            )
        return findings


class EventParityRule(Rule):
    """PAR002: ``tick`` and ``tick_reference`` emit the same event types."""

    id = "PAR002"
    title = "tick and tick_reference must emit the same tracer events"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for pa in _analyses(tree):
            tick_events = pa.events[PAIR[0]]
            ref_events = pa.events[PAIR[1]]
            if tick_events == ref_events:
                continue
            line = pa.cls.lineno
            if pa.sf.waived(line, self.id):
                continue
            findings.append(
                self.finding(
                    pa.sf.relpath,
                    line,
                    f"{pa.cls.name}: dual-path tracer-event divergence — "
                    + _describe_divergence(tick_events, ref_events),
                    pa.cls.name,
                )
            )
        return findings
