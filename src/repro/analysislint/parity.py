"""PAR rules — the event-driven and reference tick paths must agree.

PR 3 split the main loop: ``tick`` is the guarded/hot path,
``tick_reference`` the literal per-cycle oracle.  The golden equality
tests prove *behavioural* equality on the suites they run; these rules
prove *structural* equality on every class that defines both paths, so
a refactor that adds a counter or a tracer event to one body and not
the other is caught at lint time, before any golden test runs:

* ``PAR001`` — both bodies must write the same statically-extractable
  set of stats keys;
* ``PAR002`` — both bodies must emit the same set of tracer event
  kinds.

Both checks look one call level deep within the class: a key bumped by
``self._reorder_to_caq`` counts for whichever body calls it, so shared
helpers do not create false divergence, and moving an emit into a
helper used by only one path is still caught.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysislint.core import Finding, SourceFile, SourceTree
from repro.analysislint.flow import called_self_methods as _called_self_methods
from repro.analysislint.rules import Rule
from repro.analysislint.statsmodel import scan_stats_usage

#: The dual-path method pair this rule keys on.
PAIR = ("tick", "tick_reference")

#: The fast-forward pair PAR003 keys on.
BULK_PAIR = ("tick", "bulk_tick")


def _class_pairs(
    sf: SourceFile, pair: Tuple[str, str] = PAIR
) -> List[Tuple[ast.ClassDef, Dict[str, ast.FunctionDef]]]:
    """Classes defining both paths of ``pair``, with full method tables."""
    out = []
    for cls in sf.classes():
        methods = {
            node.name: node
            for node in cls.body
            if isinstance(node, ast.FunctionDef)
        }
        if all(name in methods for name in pair):
            out.append((cls, methods))
    return out


# _called_self_methods lives in flow.py now (imported above) — the
# CONC rules share the same one-level expansion.


def _direct_event_kinds(func: ast.FunctionDef) -> Set[str]:
    """Tracer event classes constructed inside ``X.emit(Kind(...))``."""
    kinds: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
        ):
            kinds.add(node.args[0].func.id)
    return kinds


class _PairAnalysis:
    """Per-class key/event sets for both paths, shared by PAR001/2."""

    def __init__(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        methods: Dict[str, ast.FunctionDef],
        pair: Tuple[str, str] = PAIR,
    ) -> None:
        self.sf = sf
        self.cls = cls
        usage = scan_stats_usage(sf)
        # literal keys written per method qualname
        key_writes: Dict[str, Set[str]] = {}
        for use in usage.writes():
            if use.kind != "literal":
                continue
            key_writes.setdefault(use.symbol, set()).update(use.keys)
        self.keys: Dict[str, Set[str]] = {}
        self.events: Dict[str, Set[str]] = {}
        for name in pair:
            func = methods[name]
            qual = sf.qualname(func)
            keys = set(key_writes.get(qual, ()))
            events = _direct_event_kinds(func)
            for callee_name in _called_self_methods(func):
                callee = methods.get(callee_name)
                if callee is None:
                    continue
                keys.update(key_writes.get(sf.qualname(callee), ()))
                events.update(_direct_event_kinds(callee))
            self.keys[name] = keys
            self.events[name] = events


def _analyses(
    tree: SourceTree, pair: Tuple[str, str] = PAIR
) -> List[_PairAnalysis]:
    out = []
    for sf in tree:
        for cls, methods in _class_pairs(sf, pair):
            out.append(_PairAnalysis(sf, cls, methods, pair))
    return out


def _describe_divergence(
    a: Set[str], b: Set[str], pair: Tuple[str, str] = PAIR
) -> str:
    only_a = sorted(a - b)
    only_b = sorted(b - a)
    parts = []
    if only_a:
        parts.append(f"only in {pair[0]}: {', '.join(only_a)}")
    if only_b:
        parts.append(f"only in {pair[1]}: {', '.join(only_b)}")
    return "; ".join(parts)


class StatsParityRule(Rule):
    """PAR001: ``tick`` and ``tick_reference`` write the same stat keys."""

    id = "PAR001"
    title = "tick and tick_reference must write the same stats keys"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for pa in _analyses(tree):
            tick_keys = pa.keys[PAIR[0]]
            ref_keys = pa.keys[PAIR[1]]
            if tick_keys == ref_keys:
                continue
            line = pa.cls.lineno
            if pa.sf.waived(line, self.id):
                continue
            findings.append(
                self.finding(
                    pa.sf.relpath,
                    line,
                    f"{pa.cls.name}: dual-path stats divergence — "
                    + _describe_divergence(tick_keys, ref_keys),
                    pa.cls.name,
                )
            )
        return findings


class EventParityRule(Rule):
    """PAR002: ``tick`` and ``tick_reference`` emit the same event types."""

    id = "PAR002"
    title = "tick and tick_reference must emit the same tracer events"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for pa in _analyses(tree):
            tick_events = pa.events[PAIR[0]]
            ref_events = pa.events[PAIR[1]]
            if tick_events == ref_events:
                continue
            line = pa.cls.lineno
            if pa.sf.waived(line, self.id):
                continue
            findings.append(
                self.finding(
                    pa.sf.relpath,
                    line,
                    f"{pa.cls.name}: dual-path tracer-event divergence — "
                    + _describe_divergence(tick_events, ref_events),
                    pa.cls.name,
                )
            )
        return findings


def _integral_keys(keys: Set[str]) -> Set[str]:
    """The per-cycle accounting keys a fast-forward must keep exact.

    ``bulk_tick`` only covers cycles where no command issues, so work
    counters (issued reads/writes, prefetch traffic) legitimately exist
    only on the ``tick`` side; what must match is the integral
    bookkeeping every covered cycle contributes: the tick count and the
    ``occ_*`` queue-occupancy integrals the utilization figures are
    computed from.
    """
    return {k for k in keys if k == "ticks" or k.startswith("occ_")}


class BulkTickParityRule(Rule):
    """PAR003: ``bulk_tick`` fast-forward matches ``tick``'s integrals."""

    id = "PAR003"
    title = "bulk_tick must match tick's integral stats and tracer events"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for pa in _analyses(tree, BULK_PAIR):
            line = pa.cls.lineno
            tick_keys = _integral_keys(pa.keys[BULK_PAIR[0]])
            bulk_keys = _integral_keys(pa.keys[BULK_PAIR[1]])
            if tick_keys != bulk_keys and not pa.sf.waived(line, self.id):
                findings.append(
                    self.finding(
                        pa.sf.relpath,
                        line,
                        f"{pa.cls.name}: fast-forward integral-stats "
                        "divergence — "
                        + _describe_divergence(tick_keys, bulk_keys, BULK_PAIR),
                        pa.cls.name,
                    )
                )
            tick_events = pa.events[BULK_PAIR[0]]
            bulk_events = pa.events[BULK_PAIR[1]]
            if tick_events != bulk_events and not pa.sf.waived(line, self.id):
                findings.append(
                    self.finding(
                        pa.sf.relpath,
                        line,
                        f"{pa.cls.name}: fast-forward tracer-event "
                        "divergence — "
                        + _describe_divergence(
                            tick_events, bulk_events, BULK_PAIR
                        ),
                        pa.cls.name,
                    )
                )
        return findings
