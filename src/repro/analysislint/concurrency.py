"""CONC rules: thread lifecycle, resource release, lock discipline.

The fleet layer (``repro.fabric``, ``repro.obs``) is the only part of
the tree that spawns threads, binds sockets and holds locks, and its
bugs are the classic ones: a heartbeat thread that outlives its agent,
a server socket left bound after ``shutdown()`` raised, a blocking call
made while the coordinator lock is held.  These rules encode the repo's
concurrency contract on top of the :mod:`~repro.analysislint.flow` CFG:

* **CONC001** — a ``threading.Thread`` created in a fleet package must
  be daemonized, handed off (escaping the function), or ``join``-ed on
  every path to function exit.
* **CONC002** — a file/socket/server acquired in a sim or fleet package
  must be released via a context manager or on every exit path
  (``try/finally`` routes through the CFG, so a ``finally`` release
  counts).
* **CONC003** — no blocking call (``sleep``, ``join``, HTTP request,
  ``serve_forever``, ``wait``, …) inside a ``with <lock>:`` body, with
  the PAR-style one-level ``self.X()`` helper expansion.

All three rules are *obligation* checks: escapes and waivers discharge
the obligation, so over-approximation silences, never invents,
findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysislint import flow
from repro.analysislint.core import (
    Finding,
    SourceFile,
    SourceTree,
    call_name,
    dotted_name,
)
from repro.analysislint.rules import Rule

#: call-name last segments that block the calling thread
BLOCKING_CALLS = frozenset(
    {
        "accept",
        "getresponse",
        "http_json",
        "join",
        "recv",
        "serve_forever",
        "sleep",
        "urlopen",
        "wait",
    }
)

#: call-name last segments that acquire a releasable resource, mapped
#: to the method names that release it
ACQUIRE_CALLS: Dict[str, Set[str]] = {
    "open": {"close"},
    "open_text": {"close"},
    "socket": {"close"},
    "socketpair": {"close"},
    "HTTPServer": {"server_close"},
    "ThreadingHTTPServer": {"server_close"},
    "urlopen": {"close"},
    "HTTPConnection": {"close"},
}


def walk_own(root: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` minus nested function/class bodies (they get their
    own CFG and their own findings)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _stmt_nodes(cfg: flow.CFG) -> Dict[int, int]:
    """id(stmt) -> CFG node id."""
    return {
        id(node.stmt): node.id for node in cfg.nodes if node.stmt is not None
    }


def _enclosing_cfg_node(
    sf: SourceFile, cfg: flow.CFG, node: ast.AST
) -> Optional[int]:
    stmt_map = _stmt_nodes(cfg)
    current: Optional[ast.AST] = node
    while current is not None:
        nid = stmt_map.get(id(current))
        if nid is not None:
            return nid
        current = sf.parent(current)
    return None


def _assign_target(sf: SourceFile, call: ast.Call) -> Optional[str]:
    """The simple name ``v`` when the call is exactly ``v = <call>``."""
    parent = sf.parent(call)
    if (
        isinstance(parent, ast.Assign)
        and parent.value is call
        and len(parent.targets) == 1
        and isinstance(parent.targets[0], ast.Name)
    ):
        return parent.targets[0].id
    if (
        isinstance(parent, ast.AnnAssign)
        and parent.value is call
        and isinstance(parent.target, ast.Name)
    ):
        return parent.target.id
    return None


def _is_with_context(sf: SourceFile, call: ast.Call) -> bool:
    """Is the call (possibly wrapped in ``closing(...)``) a ``with``
    item's context expression?"""
    node: ast.AST = call
    parent = sf.parent(node)
    if (
        isinstance(parent, ast.Call)
        and call_name(parent).rsplit(".", 1)[-1] == "closing"
    ):
        node, parent = parent, sf.parent(parent)
    if not isinstance(parent, ast.withitem):
        return False
    return parent.context_expr is node


def _calls_method_on(stmt: ast.AST, name: str, methods: Set[str]) -> bool:
    """Does this statement's *own header* call ``name.<m>()`` for any
    ``m`` in ``methods``?  (Nested statements are separate CFG nodes.)"""
    for node in flow.walk_stmt_header(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in methods
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False


class _FlowRule(Rule):
    """Shared scoping/iteration for the per-function CFG rules."""

    def _scope(self, tree: SourceTree) -> List[SourceFile]:
        raise NotImplementedError

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in self._scope(tree):
            for func in sf.functions():
                findings.extend(self._check_function(sf, func))
        return findings

    def _check_function(
        self, sf: SourceFile, func: ast.FunctionDef
    ) -> List[Finding]:
        raise NotImplementedError


class ThreadLifecycleRule(_FlowRule):
    """CONC001: every ``threading.Thread`` created in fleet code must
    be daemonized at construction, handed off (escaped), or ``join``-ed
    on every CFG path to function exit."""

    id = "CONC001"
    title = "fleet threads must be daemonized, handed off, or joined on every exit path"
    shorthand = "thread-ok"

    def _scope(self, tree: SourceTree) -> List[SourceFile]:
        return tree.in_packages(set(self.config.fleet_packages))

    def _check_function(
        self, sf: SourceFile, func: ast.FunctionDef
    ) -> List[Finding]:
        creations = [
            node
            for node in walk_own(func)
            if isinstance(node, ast.Call)
            and call_name(node).rsplit(".", 1)[-1] == "Thread"
        ]
        if not creations:
            return []
        findings: List[Finding] = []
        cfg = None
        escapes = None
        for call in creations:
            if sf.waived(call, self.id, self.shorthand):
                continue
            if any(
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            ):
                continue
            name = _assign_target(sf, call)
            if name is None:
                findings.append(
                    self.finding(
                        sf.relpath,
                        call.lineno,
                        "Thread created without daemon=True and never "
                        "bound to a name, so it can never be joined",
                        sf.qualname(call) or func.name,
                    )
                )
                continue
            if escapes is None:
                escapes = flow.escaping_names(func)
            if name in escapes:
                continue  # ownership transferred to the caller
            if self._daemonized_later(func, name):
                continue
            if cfg is None:
                cfg = flow.build_cfg(func)
            start = _enclosing_cfg_node(sf, cfg, call)
            if start is None:  # pragma: no cover - defensive
                continue
            joined_everywhere = not flow.can_reach_exit(
                cfg,
                start,
                lambda node, _n=name: node.stmt is not None
                and _calls_method_on(node.stmt, _n, {"join"}),
            )
            if not joined_everywhere:
                findings.append(
                    self.finding(
                        sf.relpath,
                        call.lineno,
                        f"thread '{name}' is neither daemonized nor "
                        "joined on every path to function exit",
                        sf.qualname(call) or func.name,
                    )
                )
        return findings

    @staticmethod
    def _daemonized_later(func: ast.FunctionDef, name: str) -> bool:
        for node in walk_own(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and node.targets[0].attr == "daemon"
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == name
                and isinstance(node.value, ast.Constant)
                and node.value.value is True
            ):
                return True
        return False


class ResourceReleaseRule(_FlowRule):
    """CONC002: files/sockets/servers acquired in fleet or sim code
    must be released via a context manager, ``try/finally``, or a
    release call on every CFG path; escaping (returned, stored on an
    object, passed onward) transfers the obligation."""

    id = "CONC002"
    title = "files/sockets/servers must be released via with, finally, or on every exit path"
    shorthand = "resource-ok"

    def _scope(self, tree: SourceTree) -> List[SourceFile]:
        packages = set(self.config.fleet_packages) | set(self.config.sim_packages)
        return tree.in_packages(packages)

    def _check_function(
        self, sf: SourceFile, func: ast.FunctionDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        cfg = None
        escapes = None
        for call in walk_own(func):
            if not isinstance(call, ast.Call):
                continue
            last = call_name(call).rsplit(".", 1)[-1]
            release_methods = ACQUIRE_CALLS.get(last)
            if release_methods is None:
                continue
            if sf.waived(call, self.id, self.shorthand):
                continue
            if _is_with_context(sf, call):
                continue
            name = _assign_target(sf, call)
            if name is None:
                # acquired anonymously: as a call argument, return value
                # or attribute/subscript store it escapes (conservatively
                # fine); anything else leaks
                parent = sf.parent(call)
                if isinstance(parent, (ast.Call, ast.Return, ast.Yield)):
                    continue
                if isinstance(parent, ast.keyword):
                    continue
                if isinstance(parent, ast.Assign) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in parent.targets
                ):
                    continue
                if isinstance(parent, ast.AnnAssign) and isinstance(
                    parent.target, (ast.Attribute, ast.Subscript)
                ):
                    continue
                findings.append(
                    self.finding(
                        sf.relpath,
                        call.lineno,
                        f"'{last}(...)' acquired without binding, context "
                        "manager, or handoff — it can never be released",
                        sf.qualname(call) or func.name,
                    )
                )
                continue
            if escapes is None:
                escapes = flow.escaping_names(func)
            if name in escapes:
                continue  # caller owns the release now
            if cfg is None:
                cfg = flow.build_cfg(func)
            start = _enclosing_cfg_node(sf, cfg, call)
            if start is None:  # pragma: no cover - defensive
                continue
            released = not flow.can_reach_exit(
                cfg,
                start,
                lambda node, _n=name, _m=release_methods: node.stmt is not None
                and _calls_method_on(node.stmt, _n, _m),
            )
            if not released:
                verbs = "/".join(sorted(release_methods))
                findings.append(
                    self.finding(
                        sf.relpath,
                        call.lineno,
                        f"'{name}' from '{last}(...)' is not released "
                        f"({verbs}) on every path to function exit — use "
                        "a context manager or try/finally",
                        sf.qualname(call) or func.name,
                    )
                )
        return findings


class LockBlockingRule(Rule):
    """CONC003: no blocking call (sleep/join/HTTP/serve/wait) may run
    inside a ``with <lock>:`` body, looking one ``self._helper()``
    level deep — a blocked holder starves every other lock user."""

    id = "CONC003"
    title = "no blocking call (sleep/join/HTTP/serve/wait) while a lock is held"
    shorthand = "blocking-ok"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in tree.in_packages(set(self.config.fleet_packages)):
            for stmt in ast.walk(sf.tree):
                if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                    continue
                lock_expr = self._lock_expr(stmt)
                if lock_expr is None:
                    continue
                if sf.waived(stmt.lineno, self.id, self.shorthand):
                    continue
                findings.extend(self._scan_body(sf, stmt, lock_expr))
        return findings

    @staticmethod
    def _lock_expr(stmt: ast.With) -> Optional[str]:
        for item in stmt.items:
            name = dotted_name(item.context_expr)
            last = name.rsplit(".", 1)[-1].lower()
            if "lock" in last:
                return name
        return None

    def _scan_body(
        self, sf: SourceFile, with_stmt: ast.With, lock_expr: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        helper_bodies = self._helper_bodies(sf, with_stmt)
        seen_msgs: Set[str] = set()
        for body_stmt in with_stmt.body:
            for node in ast.walk(body_stmt):
                if not isinstance(node, ast.Call):
                    continue
                full = call_name(node)
                last = full.rsplit(".", 1)[-1]
                where: Optional[ast.AST] = None
                blocking = ""
                if last in BLOCKING_CALLS:
                    where, blocking = node, full
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in helper_bodies
                ):
                    # one-level self-helper expansion (PAR idiom)
                    inner = self._first_blocking(helper_bodies[node.func.attr])
                    if inner is not None:
                        where, blocking = node, f"self.{node.func.attr}() -> {inner}"
                if where is None:
                    continue
                if sf.waived(where, self.id, self.shorthand):
                    continue
                message = (
                    f"blocking call '{blocking}' while holding "
                    f"'{lock_expr}'"
                )
                if message in seen_msgs:
                    continue
                seen_msgs.add(message)
                findings.append(
                    self.finding(
                        sf.relpath,
                        where.lineno,
                        message,
                        sf.qualname(where),
                    )
                )
        return findings

    @staticmethod
    def _helper_bodies(
        sf: SourceFile, with_stmt: ast.With
    ) -> Dict[str, ast.FunctionDef]:
        """Same-class methods callable as ``self.X()`` from this
        ``with`` body."""
        current = sf.parent(with_stmt)
        while current is not None and not isinstance(current, ast.ClassDef):
            current = sf.parent(current)
        if current is None:
            return {}
        return {
            item.name: item
            for item in current.body
            if isinstance(item, ast.FunctionDef)
        }

    @staticmethod
    def _first_blocking(func: ast.FunctionDef) -> Optional[str]:
        for node in walk_own(func):
            if isinstance(node, ast.Call):
                full = call_name(node)
                if full.rsplit(".", 1)[-1] in BLOCKING_CALLS:
                    return full
        return None
