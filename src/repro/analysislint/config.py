"""Lint configuration: the ``[tool.repro.lint]`` block in pyproject.toml.

Rule scoping used to be hardcoded module constants (``SIM_PACKAGES``,
``WALLCLOCK_ALLOWLIST``).  With the CONC/ATO/PROTO/MET families each
wanting their own package scope, the knobs move to pyproject.toml:

* ``[tool.repro.lint]`` — scalar options (``metric_label_cap``)
* ``[tool.repro.lint.scope]`` — package lists per rule family
  (``sim_packages``, ``hot_packages``, ``fleet_packages``,
  ``atomic_packages``)
* ``[tool.repro.lint.allow]`` — path-substring allowlists
  (``wallclock`` replaces the old ``WALLCLOCK_ALLOWLIST``)
* ``[tool.repro.lint.severity]`` — per-rule ``"error"`` (default),
  ``"warn"`` (reported, never fails ``--check``) or ``"off"``

The in-code defaults below are *identical* to the committed pyproject
values, so the linter behaves the same when run against a tree that has
no pyproject at all (narrowed-path runs, mounted fixture trees).

``tomllib`` only exists on Python 3.11+ while the repo supports 3.9;
:func:`_parse_toml_subset` is a fallback parser for the small TOML
subset this block actually uses (tables, strings, ints, booleans,
single-line string arrays).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:  # Python 3.11+
    import tomllib as _tomllib  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 CI
    _tomllib = None

__all__ = ["DEFAULT_CONFIG", "LintConfig", "load_config"]

SEVERITIES = ("error", "warn", "off")


@dataclass(frozen=True)
class LintConfig:
    """Effective lint options (defaults overlaid with pyproject)."""

    # rule-family package scopes; package = first path segment after
    # ``repro/`` (SourceTree.in_packages semantics)
    sim_packages: Tuple[str, ...] = (
        "cache",
        "controller",
        "cpu",
        "dram",
        "fastsim",
        "prefetch",
        "scenarios",
        "system",
    )
    hot_packages: Tuple[str, ...] = ("controller", "dram", "prefetch")
    fleet_packages: Tuple[str, ...] = ("fabric", "obs")
    atomic_packages: Tuple[str, ...] = (
        "experiments",
        "fabric",
        "obs",
        "scenarios",
    )
    # path substrings where wall-clock access is legitimate
    wallclock_allowlist: Tuple[str, ...] = (
        "repro/telemetry/",
        "repro/perf.py",
        "repro/obs/",
        "repro/fabric/",
    )
    # rule id -> "error" | "warn" | "off"; unlisted rules are errors
    severity: Mapping[str, str] = field(default_factory=dict)
    # max label names per metric (MET002 cardinality cap)
    metric_label_cap: int = 3

    def rule_severity(self, rule_id: str) -> str:
        return self.severity.get(rule_id, "error")


DEFAULT_CONFIG = LintConfig()


_TABLE_RE = re.compile(r"^\[(?P<name>[\w.\-]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[\w\-]+)\s*=\s*(?P<value>.+?)\s*$")
_STR_RE = re.compile(r'^(?:"(?P<dq>[^"]*)"|\'(?P<sq>[^\']*)\')$')


def _parse_scalar(text: str) -> Any:
    match = _STR_RE.match(text)
    if match:
        return match.group("dq") if match.group("dq") is not None else match.group("sq")
    if text in ("true", "false"):
        return text == "true"
    if re.match(r"^-?\d+$", text):
        return int(text)
    raise ValueError(f"unsupported TOML value: {text!r}")


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the tiny TOML subset the lint block uses (see module doc).

    Unparseable lines outside ``[tool.repro.lint*]`` tables are skipped
    so the rest of a real pyproject (multiline ruff arrays, etc.) can't
    trip the fallback; inside lint tables they raise.
    """
    root: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    current_is_lint = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not raw.lstrip().startswith("#") else ""
        # keep '#' inside quoted strings intact
        if raw.strip() and not raw.lstrip().startswith("#"):
            stripped = raw.strip()
            if '"' in stripped or "'" in stripped:
                line = stripped
        if not line:
            continue
        table = _TABLE_RE.match(line)
        if table:
            parts = table.group("name").split(".")
            node = root
            for part in parts:
                node = node.setdefault(part, {})
            current = node
            current_is_lint = table.group("name").startswith("tool.repro.lint")
            continue
        if current is None or not current_is_lint:
            continue
        kv = _KEY_RE.match(line)
        if not kv:
            raise ValueError(f"unparseable lint config line: {raw!r}")
        key, value = kv.group("key"), kv.group("value")
        if value.startswith("["):
            if not value.endswith("]"):
                raise ValueError(
                    f"lint config arrays must be single-line: {raw!r}"
                )
            inner = value[1:-1].strip()
            items: List[Any] = []
            if inner:
                for part in inner.split(","):
                    part = part.strip()
                    if part:
                        items.append(_parse_scalar(part))
            current[key] = items
        else:
            current[key] = _parse_scalar(value)
    return root


def _load_pyproject(path: str) -> Dict[str, Any]:
    with open(path, "rb") as fh:
        data = fh.read()
    if _tomllib is not None:
        return _tomllib.loads(data.decode("utf-8"))
    return _parse_toml_subset(data.decode("utf-8"))


def _as_tuple(value: Any, fallback: Tuple[str, ...]) -> Tuple[str, ...]:
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, str) for item in value
    ):
        return tuple(value)
    return fallback


def load_config(root: Optional[str]) -> LintConfig:
    """Effective config for a repo rooted at ``root``.

    Missing file, missing block or malformed values fall back to
    :data:`DEFAULT_CONFIG` (which mirrors the committed pyproject).
    """
    if root is None:
        return DEFAULT_CONFIG
    path = os.path.join(root, "pyproject.toml")
    if not os.path.isfile(path):
        return DEFAULT_CONFIG
    try:
        doc = _load_pyproject(path)
    except (OSError, ValueError, UnicodeDecodeError):
        return DEFAULT_CONFIG
    lint = (
        doc.get("tool", {}).get("repro", {}).get("lint", {})
        if isinstance(doc, dict)
        else {}
    )
    if not isinstance(lint, dict) or not lint:
        return DEFAULT_CONFIG
    scope = lint.get("scope", {}) if isinstance(lint.get("scope"), dict) else {}
    allow = lint.get("allow", {}) if isinstance(lint.get("allow"), dict) else {}
    severity_raw = (
        lint.get("severity", {}) if isinstance(lint.get("severity"), dict) else {}
    )
    severity = {
        str(rule): str(level)
        for rule, level in severity_raw.items()
        if str(level) in SEVERITIES
    }
    cap = lint.get("metric_label_cap", DEFAULT_CONFIG.metric_label_cap)
    if not isinstance(cap, int) or cap < 0:
        cap = DEFAULT_CONFIG.metric_label_cap
    return replace(
        DEFAULT_CONFIG,
        sim_packages=_as_tuple(
            scope.get("sim_packages"), DEFAULT_CONFIG.sim_packages
        ),
        hot_packages=_as_tuple(
            scope.get("hot_packages"), DEFAULT_CONFIG.hot_packages
        ),
        fleet_packages=_as_tuple(
            scope.get("fleet_packages"), DEFAULT_CONFIG.fleet_packages
        ),
        atomic_packages=_as_tuple(
            scope.get("atomic_packages"), DEFAULT_CONFIG.atomic_packages
        ),
        wallclock_allowlist=_as_tuple(
            allow.get("wallclock"), DEFAULT_CONFIG.wallclock_allowlist
        ),
        severity=severity,
        metric_label_cap=cap,
    )
