"""AST walker core: source loading, waiver comments, findings.

Everything downstream of this module works on :class:`SourceFile`
objects — a parsed AST plus the waiver/pragma comments extracted from
the token stream — grouped into a :class:`SourceTree`.  Rules never
re-read files or re-tokenize; they receive the shared parsed form.

Waiver syntax (one comment, applies to its own line; for function-level
waivers, to the ``def`` line)::

    x = compute()  # lint: no-integral
    y = table[k]   # lint: stats-dynamic
    z = set(...)   # lint: waive=DET004

Pragmas declare facts the AST cannot express::

    # lint: stat-prefixes(lat_sum_, lat_cnt_)

registers dynamic stat-key prefixes with the REG rule's registry.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: ``# lint: token`` — token may be a bare word, ``waive=RULE``, or a
#: ``name(arg, arg)`` pragma.  Anchored to the *start* of the comment
#: so prose that merely mentions the syntax is never parsed as a
#: waiver (which would then be reported as stale).
_LINT_COMMENT = re.compile(r"^#\s*lint:\s*(.+?)\s*$")
_PRAGMA = re.compile(r"^(?P<name>[\w-]+)\s*\(\s*(?P<args>[^)]*)\)\s*$")


@dataclass(frozen=True)
class Waiver:
    """One ``# lint:`` comment."""

    line: int
    token: str  # e.g. "no-integral", "waive=CYC001"

    def waives(self, rule_id: str, shorthand: Optional[str] = None) -> bool:
        """Does this waiver suppress ``rule_id`` findings on its line?"""
        if self.token == f"waive={rule_id}":
            return True
        return shorthand is not None and self.token == shorthand


@dataclass(frozen=True)
class Pragma:
    """One ``# lint: name(args)`` declaration."""

    line: int
    name: str
    args: Tuple[str, ...]


@dataclass
class Finding:
    """One rule violation, structured for both reporters.

    ``symbol`` is the enclosing class/function qualname (or the module
    itself) — it anchors the baseline fingerprint, so findings survive
    unrelated line drift in the file.
    """

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    symbol: str = ""
    waiver_hint: str = ""

    def fingerprint(self) -> str:
        """Line- and path-free identity used by the baseline file.

        Deliberately excludes ``path`` as well as ``line``: a pure file
        move (rename, package shuffle) must not invalidate a baseline
        entry.  ``symbol`` (class/function qualname) plus the message
        text is unique enough in practice — a same-named symbol with
        the same defect in two files is the same debt either way.
        """
        return f"{self.rule}::{self.symbol}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "waiver": self.waiver_hint,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        loc = f"{self.path}:{self.line}"
        text = f"{loc}: {self.rule} [{self.symbol}] {self.message}"
        if self.waiver_hint:
            text += f"  (waive: # lint: {self.waiver_hint})"
        return text


class SourceFile:
    """One parsed module: AST, waivers, pragmas, and the parent map."""

    def __init__(self, path: str, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.waivers: Dict[int, List[Waiver]] = {}
        self.pragmas: List[Pragma] = []
        #: ``(line, token)`` of every waiver that suppressed something
        #: this run — the complement feeds stale-waiver reporting.
        self.used_waivers: Set[Tuple[int, str]] = set()
        self._collect_comments(text)
        #: child AST node -> parent, for symbol/qualname resolution
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- comments -----------------------------------------------------
    def _collect_comments(self, text: str) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - parse succeeded
            comments = []
        for line, comment in comments:
            match = _LINT_COMMENT.search(comment)
            if not match:
                continue
            token = match.group(1)
            pragma = _PRAGMA.match(token)
            if pragma:
                args = tuple(
                    a.strip() for a in pragma.group("args").split(",") if a.strip()
                )
                self.pragmas.append(Pragma(line, pragma.group("name"), args))
            else:
                self.waivers.setdefault(line, []).append(Waiver(line, token))

    def waived(
        self, node_or_line, rule_id: str, shorthand: Optional[str] = None
    ) -> bool:
        """Is there a waiver for ``rule_id`` on this node's line?

        Accepts an AST node (its ``lineno`` is used; for multi-line
        statements every line the node spans is checked) or an int.
        """
        if isinstance(node_or_line, int):
            lines: Iterable[int] = (node_or_line,)
        else:
            end = getattr(node_or_line, "end_lineno", None) or node_or_line.lineno
            lines = range(node_or_line.lineno, end + 1)
        for line in lines:
            for waiver in self.waivers.get(line, ()):
                if waiver.waives(rule_id, shorthand):
                    self.used_waivers.add((waiver.line, waiver.token))
                    return True
        return False

    def unused_waivers(self) -> List[Waiver]:
        """Waivers that suppressed nothing in the rules run so far.

        Only meaningful after the *full* catalogue ran (a narrowed rule
        set would mark everything else's waivers stale)."""
        out = []
        for line in sorted(self.waivers):
            for waiver in self.waivers[line]:
                if (waiver.line, waiver.token) not in self.used_waivers:
                    out.append(waiver)
        return out

    # -- structure ----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def qualname(self, node: ast.AST) -> str:
        """Dotted class/function path enclosing ``node`` (module = '')."""
        parts: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(parts))

    def functions(self) -> List[ast.FunctionDef]:
        """Every (sync) function/method definition in the module."""
        return [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, ast.FunctionDef)
        ]

    def classes(self) -> List[ast.ClassDef]:
        return [
            node for node in ast.walk(self.tree) if isinstance(node, ast.ClassDef)
        ]


@dataclass
class SourceTree:
    """Every scanned :class:`SourceFile`, addressable by relpath."""

    root: str
    files: List[SourceFile] = field(default_factory=list)

    def __iter__(self):
        return iter(self.files)

    def get(self, relpath: str) -> Optional[SourceFile]:
        relpath = relpath.replace(os.sep, "/")
        for f in self.files:
            if f.relpath == relpath:
                return f
        return None

    def in_packages(self, packages: Set[str]) -> List[SourceFile]:
        """Files under ``src/repro/<pkg>/`` (or ``src/repro/<pkg>.py``)
        for any named package/module."""
        out = []
        for f in self.files:
            parts = f.relpath.split("/")
            try:
                idx = parts.index("repro")
            except ValueError:
                continue
            if len(parts) <= idx + 1:
                continue
            head = parts[idx + 1]
            if head.endswith(".py"):
                head = head[:-3]
            if head in packages:
                out.append(f)
        return out


def load_tree(root: str, paths: Optional[Iterable[str]] = None) -> SourceTree:
    """Parse every ``.py`` file under ``paths`` (default ``src/repro``).

    Files are visited in sorted order so every downstream artifact
    (reports, the generated registry) is deterministic.
    """
    if paths is None:
        paths = [os.path.join(root, "src", "repro")]
    tree = SourceTree(root=root)
    seen: Set[str] = set()
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        candidates.append(os.path.join(dirpath, name))
        for filepath in candidates:
            if filepath in seen:
                continue
            seen.add(filepath)
            relpath = os.path.relpath(filepath, root)
            with open(filepath, "r", encoding="utf-8") as handle:
                text = handle.read()
            tree.files.append(SourceFile(filepath, relpath, text))
    return tree


# ---------------------------------------------------------------------
# small AST helpers shared by the rules
# ---------------------------------------------------------------------
def call_name(node: ast.Call) -> str:
    """Dotted name of a call target ('time.perf_counter', 'bump', ...)."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        inner = dotted_name(node.func)
        parts.append(f"{inner}()" if inner else "()")
    elif parts:
        parts.append("?")
    return ".".join(reversed(parts))
