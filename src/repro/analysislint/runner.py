"""Orchestration: scan -> rules -> baseline -> report -> exit code.

This is the engine behind both front doors (``tools/lint.py`` and
``repro lint``).  ``run_lint`` is also the API the unit tests use, so
the CLI layers stay trivially thin.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.analysislint.baseline import (
    DEFAULT_BASELINE,
    BaselineSplit,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysislint.core import Finding, SourceTree, load_tree
from repro.analysislint.registry import write_registry
from repro.analysislint.report import render_json, render_text
from repro.analysislint.rules import Rule, all_rules


def find_repo_root(start: Optional[str] = None) -> str:
    """Nearest ancestor holding ``src/repro`` (fallback: cwd)."""
    path = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isdir(os.path.join(path, "src", "repro")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start or os.getcwd())
        path = parent


@dataclass
class LintResult:
    """Everything one lint run produced."""

    tree: SourceTree
    findings: List[Finding] = field(default_factory=list)
    split: BaselineSplit = field(default_factory=BaselineSplit)

    @property
    def checked_files(self) -> int:
        return len(self.tree.files)

    @property
    def ok(self) -> bool:
        """No *new* findings (baselined ones are tolerated)."""
        return not self.split.new

    def render(self, as_json: bool = False) -> str:
        if as_json:
            return render_json(self.split, self.checked_files)
        return render_text(self.split, self.checked_files)


def run_lint(
    root: Optional[str] = None,
    paths: Optional[Iterable[str]] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
) -> LintResult:
    """Run the full pass and partition findings against the baseline.

    ``paths`` defaults to ``<root>/src/repro``; narrowing it narrows
    every per-file rule but the registry rule always compares against
    the committed registry, so partial scans of files that define
    counters will report registry drift — run on the full tree for
    authoritative results.
    """
    root = find_repo_root(root)
    tree = load_tree(root, list(paths) if paths else None)
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(tree))
    baseline_file = baseline_path or os.path.join(root, DEFAULT_BASELINE)
    if update_baseline:
        save_baseline(baseline_file, findings)
    split = split_against_baseline(findings, load_baseline(baseline_file))
    return LintResult(tree=tree, findings=findings, split=split)


def regenerate_registry(root: Optional[str] = None) -> str:
    """Rewrite ``repro/common/stat_keys.py`` from a fresh scan."""
    root = find_repo_root(root)
    tree = load_tree(root)
    return write_registry(tree, root)


def main(argv: Optional[List[str]] = None) -> int:
    """Shared CLI entry point (tools/lint.py and ``repro lint``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint",
        description=(
            "simulator-invariant static analysis (determinism, dual-path "
            "parity, cycle accounting, stat-key registry, hot-path "
            "hygiene) — see docs/linting.md"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on any new (non-baselined) finding",
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--write-registry",
        action="store_true",
        help="regenerate repro/common/stat_keys.py and exit",
    )
    args = parser.parse_args(argv)

    root = find_repo_root()
    if args.write_registry:
        path = write_registry(load_tree(root), root)
        print(f"wrote {os.path.relpath(path, root)}")
        return 0

    result = run_lint(
        root=root,
        paths=args.paths or None,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )
    print(result.render(as_json=args.json))
    if args.check and not result.ok:
        return 1
    return 0
