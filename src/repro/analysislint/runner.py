"""Orchestration: scan -> rules -> baseline -> report -> exit code.

This is the engine behind both front doors (``tools/lint.py`` and
``repro lint``).  ``run_lint`` is also the API the unit tests use, so
the CLI layers stay trivially thin.

Configuration comes from ``[tool.repro.lint]`` in pyproject.toml (rule
scoping, severity levels, allowlists — see
:mod:`repro.analysislint.config`); rules configured ``"off"`` are
skipped, rules configured ``"warn"`` report without failing
``--check``.  A full-catalogue run additionally reports *stale
waivers*: ``# lint:`` comments that no longer suppress anything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.analysislint.baseline import (
    DEFAULT_BASELINE,
    BaselineSplit,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysislint.config import LintConfig, load_config
from repro.analysislint.core import Finding, SourceTree, load_tree
from repro.analysislint.obsmetrics import write_metric_registry
from repro.analysislint.registry import write_registry
from repro.analysislint.report import StaleWaiver, render_json, render_text
from repro.analysislint.rules import Rule, all_rules
from repro.analysislint.wireproto import write_wire_schema


def find_repo_root(start: Optional[str] = None) -> str:
    """Nearest ancestor holding ``src/repro`` (fallback: cwd)."""
    path = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isdir(os.path.join(path, "src", "repro")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start or os.getcwd())
        path = parent


@dataclass
class LintResult:
    """Everything one lint run produced."""

    tree: SourceTree
    findings: List[Finding] = field(default_factory=list)
    split: BaselineSplit = field(default_factory=BaselineSplit)
    warnings: List[Finding] = field(default_factory=list)
    stale_waivers: List[StaleWaiver] = field(default_factory=list)

    @property
    def checked_files(self) -> int:
        return len(self.tree.files)

    @property
    def ok(self) -> bool:
        """No *new* findings (baselined and warn-level are tolerated)."""
        return not self.split.new

    def render(self, as_json: bool = False) -> str:
        if as_json:
            return render_json(
                self.split, self.checked_files, self.warnings, self.stale_waivers
            )
        return render_text(
            self.split, self.checked_files, self.warnings, self.stale_waivers
        )


def run_lint(
    root: Optional[str] = None,
    paths: Optional[Iterable[str]] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Run the full pass and partition findings against the baseline.

    ``paths`` defaults to ``<root>/src/repro``; narrowing it narrows
    every per-file rule but the registry rules always compare against
    the committed registries, so partial scans of files that define
    counters/metrics/messages will report registry drift — run on the
    full tree for authoritative results.

    Passing an explicit ``rules`` iterable (tests, focused runs)
    bypasses severity filtering *and* stale-waiver collection — both
    are only meaningful against the full catalogue.
    """
    root = find_repo_root(root)
    config = config if config is not None else load_config(root)
    tree = load_tree(root, list(paths) if paths else None)
    full_catalogue = rules is None
    if full_catalogue:
        active: List[Rule] = [
            rule
            for rule in all_rules(config)
            if config.rule_severity(rule.id) != "off"
        ]
    else:
        active = list(rules)
    findings: List[Finding] = []
    warnings: List[Finding] = []
    for rule in active:
        produced = rule.check(tree)
        if full_catalogue and config.rule_severity(rule.id) == "warn":
            warnings.extend(produced)
        else:
            findings.extend(produced)
    stale_waivers: List[StaleWaiver] = []
    if full_catalogue:
        for sf in tree:
            for waiver in sf.unused_waivers():
                stale_waivers.append((sf.relpath, waiver.line, waiver.token))
    baseline_file = baseline_path or os.path.join(root, DEFAULT_BASELINE)
    if update_baseline:
        save_baseline(baseline_file, findings)
    split = split_against_baseline(findings, load_baseline(baseline_file))
    return LintResult(
        tree=tree,
        findings=findings,
        split=split,
        warnings=warnings,
        stale_waivers=stale_waivers,
    )


def regenerate_registry(root: Optional[str] = None) -> List[str]:
    """Rewrite all three generated registries from a fresh scan.

    ``repro/common/stat_keys.py`` (stat-key registry),
    ``repro/fabric/wire_schema.py`` (wire-protocol schema) and
    ``repro/obs/metric_names.py`` (metric-name registry); returns the
    written paths.
    """
    root = find_repo_root(root)
    tree = load_tree(root)
    return [
        write_registry(tree, root),
        write_wire_schema(tree, root),
        write_metric_registry(tree, root),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """Shared CLI entry point (tools/lint.py and ``repro lint``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint",
        description=(
            "simulator-invariant static analysis (determinism, dual-path "
            "parity, cycle accounting, concurrency/atomicity contracts, "
            "wire-protocol and registry parity, hot-path hygiene) — see "
            "docs/linting.md"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on any new (non-baselined) finding",
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="additionally write the JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--write-registry",
        action="store_true",
        help=(
            "regenerate the stat-key, wire-schema, and metric-name "
            "registries and exit"
        ),
    )
    args = parser.parse_args(argv)

    root = find_repo_root()
    if args.write_registry:
        for path in regenerate_registry(root):
            print(f"wrote {os.path.relpath(path, root)}")
        return 0

    result = run_lint(
        root=root,
        paths=args.paths or None,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.render(as_json=True) + "\n")
    print(result.render(as_json=args.json))
    if args.check and not result.ok:
        return 1
    return 0
