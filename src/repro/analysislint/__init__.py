"""repro.analysislint — simulator-invariant static analysis.

Off-the-shelf linters check Python; this package checks the
*simulator*.  Every rule here encodes an invariant that a past bug (or
a near-miss) showed the hot-path refactors can silently violate:

* ``DET*`` — **determinism**: no wall-clock, no unseeded randomness,
  no set-iteration-order dependence inside the simulated machine
  (``repro.{controller,dram,cpu,cache,prefetch,system}``).  Telemetry
  and perf modules are allowlisted — tracer self-measurement
  legitimately reads ``time.perf_counter``.
* ``PAR*`` — **dual-path parity**: a class that defines both ``tick``
  and ``tick_reference`` must bump the same statically-extractable
  stats keys and emit the same tracer event kinds from both bodies.
* ``CYC*`` — **cycle accounting**: a function that writes a
  cycle/fast-forward variable must also integrate the skipped time
  into the ``ticks``/``occ_*`` counters (directly or by delegating to
  an accounting method) or carry an explicit ``# lint: no-integral``
  waiver.
* ``REG*`` — **stats-key registry**: every statically-extractable key
  passed to ``Stats.bump``/``set`` or indexed through ``Stats.raw()``
  must appear in the generated ``repro/common/stat_keys.py`` registry;
  reads of keys no writer produces are flagged as typos.
* ``HYG*`` — **hot-path hygiene**: dataclasses in the
  controller/dram/prefetch hot paths declare ``slots``, and nothing
  the per-tick event loop executes calls ``datetime.now()``-style
  wall-clock helpers.

See ``docs/linting.md`` for the rule catalogue, the waiver comment
syntax, the baseline workflow, and registry regeneration.
"""

from repro.analysislint.core import Finding, SourceFile, SourceTree
from repro.analysislint.rules import Rule, all_rules, rule_titles
from repro.analysislint.runner import LintResult, run_lint

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "SourceFile",
    "SourceTree",
    "all_rules",
    "rule_titles",
    "run_lint",
]
