"""Static extraction of ``Stats`` counter-key usage.

The simulator bumps counters three ways, and all three must be visible
to the registry and parity rules:

* through the API — ``self.stats.bump("key")`` / ``stats.set("key", v)``
  (including locally aliased bound methods, ``bump = self.stats.bump``);
* through the hot-path raw mapping — ``values["key"] += 1`` where
  ``values`` aliases ``self._stat_values = self.stats.raw()``;
* with dynamic keys — f-strings (``f"pb_hits_{cmd.provenance.value}"``)
  and precomputed tables (``values[k_sum] += latency``).

This module resolves those shapes per file into :class:`KeyUse`
records.  F-string keys whose every placeholder ranges over the
:class:`~repro.common.types.Provenance` enum are expanded into the full
literal key set; other f-strings contribute their literal head as a
*prefix*.  Keys the AST cannot bound at all are ``dynamic`` and must be
waived with ``# lint: stats-dynamic``, usually next to a
``# lint: stat-prefixes(...)`` pragma declaring what they produce.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysislint.core import SourceFile, dotted_name

#: Stats method names that write / read a counter key (first argument).
_WRITE_METHODS = {"bump", "set"}
_READ_METHODS = {"ratio"}  # both arguments are keys


def provenance_values() -> Tuple[str, ...]:
    """The Provenance enum's value strings, for f-string expansion."""
    from repro.common.types import Provenance

    return tuple(p.value for p in Provenance)


@dataclass
class KeyUse:
    """One syntactic site that writes or reads counter keys.

    ``kind``:
      * ``literal`` — ``keys`` holds every key this site can produce;
      * ``prefix`` — an f-string with unbounded placeholders; ``prefix``
        is its literal head;
      * ``dynamic`` — the key expression is statically opaque.
    """

    kind: str
    access: str  # "write" | "read"
    keys: Tuple[str, ...]
    prefix: Optional[str]
    line: int
    symbol: str
    relpath: str


@dataclass
class StatsUsage:
    """Everything one file does with Stats counters."""

    uses: List[KeyUse] = field(default_factory=list)
    merge_prefixes: Set[str] = field(default_factory=set)

    def writes(self) -> List[KeyUse]:
        return [u for u in self.uses if u.access == "write"]

    def reads(self) -> List[KeyUse]:
        return [u for u in self.uses if u.access == "read"]


class _FileScan(ast.NodeVisitor):
    """Single pass over one module, function-scope alias tracking."""

    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.usage = StatsUsage()
        # attribute names (self.X) known to hold a Stats instance /
        # the raw() mapping, discovered in a module-wide pre-pass
        self.stats_attrs: Set[str] = {"stats"}
        self.raw_attrs: Set[str] = set()
        self._prov_values = provenance_values()
        # per-function alias environments (reset on function entry)
        self._local_stats: Set[str] = set()
        self._local_raw: Set[str] = set()
        self._local_methods: Dict[str, str] = {}  # name -> bump|set

    # -- pre-pass -----------------------------------------------------
    def prescan(self) -> None:
        for node in ast.walk(self.sf.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Attribute):
                continue
            if self._is_stats_ctor(node.value):
                self.stats_attrs.add(target.attr)
            elif self._is_raw_call(node.value):
                self.raw_attrs.add(target.attr)

    @staticmethod
    def _is_stats_ctor(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Stats"
        )

    def _is_raw_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "raw"
            and self._is_stats_expr(node.func.value)
        )

    # -- expression classification ------------------------------------
    def _is_stats_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._local_stats
        if isinstance(node, ast.Attribute):
            return node.attr in self.stats_attrs
        return self._is_stats_ctor(node)

    def _is_raw_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._local_raw
        if isinstance(node, ast.Attribute):
            return node.attr in self.raw_attrs
        return False

    # -- traversal ----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved = (self._local_stats, self._local_raw, self._local_methods)
        self._local_stats = set()
        self._local_raw = set()
        self._local_methods = {}
        self.generic_visit(node)
        self._local_stats, self._local_raw, self._local_methods = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # pragma: no cover

    def visit_Assign(self, node: ast.Assign) -> None:
        # alias tracking: locals bound to Stats objects, raw mappings,
        # or bound bump/set methods
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value = node.value
            if self._is_stats_ctor(value) or self._is_stats_expr(value):
                self._local_stats.add(name)
            elif self._is_raw_call(value) or self._is_raw_expr(value):
                self._local_raw.add(name)
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in _WRITE_METHODS
                and self._is_stats_expr(value.value)
            ):
                self._local_methods[name] = value.attr
        for target in node.targets:
            self._subscript_use(target, "write")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._subscript_use(node.target, "write")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # plain loads: stats["key"] (Stats.__getitem__) or raw reads
        if isinstance(node.ctx, ast.Load) and (
            self._is_stats_expr(node.value) or self._is_raw_expr(node.value)
        ):
            self._record(node.slice, "read", node)
        self.generic_visit(node)

    def _subscript_use(self, target: ast.AST, access: str) -> None:
        if isinstance(target, ast.Subscript) and (
            self._is_raw_expr(target.value) or self._is_stats_expr(target.value)
        ):
            self._record(target.slice, access, target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        method: Optional[str] = None
        if isinstance(func, ast.Attribute) and self._is_stats_expr(func.value):
            method = func.attr
        elif isinstance(func, ast.Name) and func.id in self._local_methods:
            method = self._local_methods[func.id]
        if method in _WRITE_METHODS and node.args:
            self._record(node.args[0], "write", node)
        elif method in _READ_METHODS and len(node.args) >= 2:
            self._record(node.args[0], "read", node)
            self._record(node.args[1], "read", node)
        elif method == "merge" and len(node.args) >= 2:
            prefix = node.args[1]
            if isinstance(prefix, ast.Constant) and isinstance(prefix.value, str):
                self.usage.merge_prefixes.add(prefix.value)
        elif method == "get" and node.args:
            # plain-dict .get on a stats mapping (RunResult.stats
            # snapshots, raw aliases): a read of the literal key
            if isinstance(node.args[0], ast.Constant):
                self._record(node.args[0], "read", node)
        self.generic_visit(node)

    # -- key recording -------------------------------------------------
    def _record(self, key_node: ast.AST, access: str, site: ast.AST) -> None:
        kind, keys, prefix = self._classify_key(key_node)
        if kind == "dynamic" and access == "read":
            # opaque reads cannot corrupt the registry; only opaque
            # writes demand a waiver + pragma
            return
        self.usage.uses.append(
            KeyUse(
                kind=kind,
                access=access,
                keys=keys,
                prefix=prefix,
                line=site.lineno,
                symbol=self.sf.qualname(site),
                relpath=self.sf.relpath,
            )
        )

    def _classify_key(
        self, node: ast.AST
    ) -> Tuple[str, Tuple[str, ...], Optional[str]]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "literal", (node.value,), None
        if isinstance(node, ast.IfExp):
            arms = []
            for arm in (node.body, node.orelse):
                if isinstance(arm, ast.Constant) and isinstance(arm.value, str):
                    arms.append(arm.value)
            if len(arms) == 2:
                return "literal", tuple(arms), None
        if isinstance(node, ast.JoinedStr):
            return self._classify_fstring(node)
        return "dynamic", (), None

    def _classify_fstring(
        self, node: ast.JoinedStr
    ) -> Tuple[str, Tuple[str, ...], Optional[str]]:
        """Expand provenance-valued f-strings; head-prefix otherwise."""
        keys: List[str] = [""]
        head = ""
        head_open = True
        for part in node.values:
            if isinstance(part, ast.Constant):
                keys = [k + str(part.value) for k in keys]
                if head_open:
                    head += str(part.value)
                continue
            if not isinstance(part, ast.FormattedValue):  # pragma: no cover
                return "dynamic", (), None
            domain = self._field_domain(part.value)
            if domain is None:
                return ("prefix", (), head) if head else ("dynamic", (), None)
            keys = [k + v for k in keys for v in domain]
            head_open = False
        return "literal", tuple(keys), None

    def _field_domain(self, node: ast.AST) -> Optional[Tuple[str, ...]]:
        """Value domain of one f-string placeholder, if statically known.

        ``X.provenance.value`` (and ``prov.value`` over a Provenance
        iteration) ranges over the Provenance enum — the only enum the
        counter keys embed today.
        """
        dotted = dotted_name(node)
        if dotted.endswith(".value"):
            stem = dotted[: -len(".value")]
            if "provenance" in stem or stem.split(".")[-1] in ("prov", "provenance"):
                return self._prov_values
        return None


def scan_stats_usage(sf: SourceFile) -> StatsUsage:
    """Extract every Stats counter-key use site from one file."""
    scan = _FileScan(sf)
    scan.prescan()
    scan.visit(sf.tree)
    return scan.usage


# ---------------------------------------------------------------------
# per-function views, used by the parity rule
# ---------------------------------------------------------------------
def function_key_writes(sf: SourceFile, func: ast.FunctionDef) -> Set[str]:
    """Literal counter keys written directly inside ``func``'s body."""
    usage = scan_stats_usage(sf)
    qual = sf.qualname(func)
    keys: Set[str] = set()
    for use in usage.writes():
        if use.symbol == qual and use.kind == "literal":
            keys.update(use.keys)
    return keys
