"""Rule framework: the base class and the rule catalogue.

A rule is a stateless object with a stable ``id``, a one-line
``title``, an optional waiver ``shorthand`` (the bare token accepted in
a ``# lint:`` comment in place of ``waive=<id>``), and a ``check``
method that maps a :class:`~repro.analysislint.core.SourceTree` to
findings.  Rules receive the whole tree — cross-file rules (the
registry) and single-file rules (everything else) use the same shape.

:func:`all_rules` builds the ordered catalogue the runner executes;
order is cosmetic (findings are re-sorted by location) but kept stable
for predictable reports.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.analysislint.core import Finding, SourceTree

#: Simulated-machine packages: everything the main loop executes, plus
#: the fast analytic surrogate — its predictions feed the same stores
#: and plots, so it must be exactly as deterministic as the simulator —
#: and the scenario tooling (trace loaders, adversarial fuzzer), whose
#: whole contract is "same seed, same worst cases".
SIM_PACKAGES: Set[str] = {
    "controller",
    "dram",
    "cpu",
    "cache",
    "prefetch",
    "system",
    "fastsim",
    "scenarios",
}

#: Hot-path packages for the hygiene rule (per-tick object traffic).
HOT_PACKAGES: Set[str] = {"controller", "dram", "prefetch"}

#: Modules allowlisted for wall-clock use: the tracer self-measures its
#: overhead, the perf harness times the host, the observability package
#: timestamps fleet-level records (snapshots, post-mortems, uptime),
#: and the fabric's lease timers/heartbeats measure real elapsed time —
#: all host-side concerns, never simulated time.
WALLCLOCK_ALLOWLIST = ("repro/telemetry/", "repro/perf.py", "repro/obs/",
                       "repro/fabric/")


class Rule:
    """Base class for one invariant check."""

    id: str = ""
    title: str = ""
    shorthand: str = ""  # bare waiver token ('' = waive=<id> only)

    def check(self, tree: SourceTree) -> List[Finding]:
        raise NotImplementedError

    def waiver_hint(self) -> str:
        return self.shorthand or f"waive={self.id}"

    def finding(self, path: str, line: int, message: str, symbol: str) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            message=message,
            symbol=symbol,
            waiver_hint=self.waiver_hint(),
        )


def all_rules() -> Sequence[Rule]:
    """Fresh instances of the full catalogue (import-cycle free)."""
    from repro.analysislint.cycles import CycleAccountingRule
    from repro.analysislint.determinism import (
        SetIterationRule,
        UnseededRandomRule,
        UrandomRule,
        WallClockRule,
    )
    from repro.analysislint.hygiene import HotPathDatetimeRule, SlotsRule
    from repro.analysislint.parity import EventParityRule, StatsParityRule
    from repro.analysislint.registry import (
        DynamicKeyRule,
        RegistryRule,
        UnwrittenReadRule,
    )

    return (
        WallClockRule(),
        UnseededRandomRule(),
        UrandomRule(),
        SetIterationRule(),
        StatsParityRule(),
        EventParityRule(),
        CycleAccountingRule(),
        RegistryRule(),
        DynamicKeyRule(),
        UnwrittenReadRule(),
        SlotsRule(),
        HotPathDatetimeRule(),
    )


def rule_titles() -> dict:
    """rule id -> title, for reporters and docs checks."""
    return {rule.id: rule.title for rule in all_rules()}
