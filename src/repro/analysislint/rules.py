"""Rule framework: the base class and the rule catalogue.

A rule is a stateless object with a stable ``id``, a one-line
``title``, an optional waiver ``shorthand`` (the bare token accepted in
a ``# lint:`` comment in place of ``waive=<id>``), and a ``check``
method that maps a :class:`~repro.analysislint.core.SourceTree` to
findings.  Rules receive the whole tree — cross-file rules (the
registry) and single-file rules (everything else) use the same shape.

:func:`all_rules` builds the ordered catalogue the runner executes;
order is cosmetic (findings are re-sorted by location) but kept stable
for predictable reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.analysislint.config import DEFAULT_CONFIG, LintConfig
from repro.analysislint.core import Finding, SourceTree

#: Kept as module-level aliases of the config defaults for callers that
#: predate ``[tool.repro.lint]``; rules themselves read ``self.config``
#: so pyproject overrides take effect.  See config.py for rationale on
#: each scope (sim determinism, hot-path hygiene, wall-clock sanctum).
SIM_PACKAGES: Set[str] = set(DEFAULT_CONFIG.sim_packages)
HOT_PACKAGES: Set[str] = set(DEFAULT_CONFIG.hot_packages)
WALLCLOCK_ALLOWLIST = DEFAULT_CONFIG.wallclock_allowlist


class Rule:
    """Base class for one invariant check."""

    id: str = ""
    title: str = ""
    shorthand: str = ""  # bare waiver token ('' = waive=<id> only)
    #: effective options; ``all_rules(config=...)`` overrides per
    #: instance, the class default keeps directly-constructed rules
    #: (tests, narrowed runs) on the committed behavior
    config: LintConfig = DEFAULT_CONFIG

    def check(self, tree: SourceTree) -> List[Finding]:
        raise NotImplementedError

    def waiver_hint(self) -> str:
        return self.shorthand or f"waive={self.id}"

    def finding(self, path: str, line: int, message: str, symbol: str) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            message=message,
            symbol=symbol,
            waiver_hint=self.waiver_hint(),
        )


def all_rules(config: Optional[LintConfig] = None) -> Sequence[Rule]:
    """Fresh instances of the full catalogue (import-cycle free).

    ``config`` (usually :func:`~repro.analysislint.config.load_config`
    of the repo root) is attached to every instance; ``None`` keeps the
    committed defaults.
    """
    from repro.analysislint.atomic import AtomicWriteRule
    from repro.analysislint.concurrency import (
        LockBlockingRule,
        ResourceReleaseRule,
        ThreadLifecycleRule,
    )
    from repro.analysislint.cycles import CycleAccountingRule
    from repro.analysislint.determinism import (
        SetIterationRule,
        UnseededRandomRule,
        UrandomRule,
        WallClockRule,
    )
    from repro.analysislint.hygiene import HotPathDatetimeRule, SlotsRule
    from repro.analysislint.obsmetrics import (
        MetricNameRule,
        MetricRegistryRule,
        UnknownMetricReadRule,
    )
    from repro.analysislint.parity import (
        BulkTickParityRule,
        EventParityRule,
        StatsParityRule,
    )
    from repro.analysislint.registry import (
        DynamicKeyRule,
        RegistryRule,
        UnwrittenReadRule,
    )
    from repro.analysislint.wireproto import (
        WireHandlerParityRule,
        WireVersionRule,
    )

    rules = (
        WallClockRule(),
        UnseededRandomRule(),
        UrandomRule(),
        SetIterationRule(),
        StatsParityRule(),
        EventParityRule(),
        BulkTickParityRule(),
        CycleAccountingRule(),
        RegistryRule(),
        DynamicKeyRule(),
        UnwrittenReadRule(),
        SlotsRule(),
        HotPathDatetimeRule(),
        ThreadLifecycleRule(),
        ResourceReleaseRule(),
        LockBlockingRule(),
        AtomicWriteRule(),
        WireHandlerParityRule(),
        WireVersionRule(),
        MetricRegistryRule(),
        MetricNameRule(),
        UnknownMetricReadRule(),
    )
    if config is not None:
        for rule in rules:
            rule.config = config
    return rules


def rule_titles() -> dict:
    """rule id -> title, for reporters and docs checks."""
    return {rule.id: rule.title for rule in all_rules()}
