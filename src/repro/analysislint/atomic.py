"""ATO001: result-store writes must be atomic (write-tmp-then-rename).

Every durable artifact in the fleet pipeline — store result files,
metric snapshots, flight-recorder post-mortems, converted traces — is
read back by *other* processes (workers, the coordinator, CI), so a
torn write is not a local bug, it poisons the whole fleet.  The repo's
sanctioned idiom is::

    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=...)
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(payload)
    os.replace(tmp, final_path)

(or the lighter ``tmp = path + ".tmp"`` variant).  ATO001 flags any
write-mode ``open``/``os.fdopen``/``open_text``/``gzip.open`` in the
configured ``atomic_packages`` whose target does not flow into an
``os.replace``/``os.rename`` in the same function.  Append-mode opens
are exempt — append streams (JSONL logs) are their own idiom, not
store writes.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysislint.concurrency import walk_own
from repro.analysislint.core import Finding, SourceFile, SourceTree, call_name
from repro.analysislint.rules import Rule

#: openers whose result is a writable handle when the mode says so
_OPENERS = frozenset({"open", "fdopen", "open_text"})
_RENAMES = frozenset({"replace", "rename"})


def _write_mode(call: ast.Call) -> bool:
    """True when the call opens for (over)writing: mode contains
    ``w``/``x``/``+``.  Missing mode = read.  ``a`` (append) is exempt
    by design — see the module docstring."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return any(ch in mode.value for ch in "wx+")


class AtomicWriteRule(Rule):
    """ATO001: flag write-mode opens in atomic-scope packages whose
    written path never flows through ``os.replace``/``os.rename`` —
    readers of those artifacts must never observe a torn file."""

    id = "ATO001"
    title = "durable writes must go through write-tmp-then-os.replace"
    shorthand = "non-atomic-ok"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in tree.in_packages(set(self.config.atomic_packages)):
            for func in sf.functions():
                findings.extend(self._check_function(sf, func))
        return findings

    def _check_function(
        self, sf: SourceFile, func: ast.FunctionDef
    ) -> List[Finding]:
        writes: List[ast.Call] = []
        rename_src_names: Set[str] = set()
        rename_src_dumps: Set[str] = set()
        has_mkstemp = False
        for node in walk_own(func):
            if not isinstance(node, ast.Call):
                continue
            last = call_name(node).rsplit(".", 1)[-1]
            if last in _OPENERS and _write_mode(node):
                writes.append(node)
            elif last == "mkstemp":
                has_mkstemp = True
            elif last in _RENAMES and node.args:
                src = node.args[0]
                rename_src_dumps.add(ast.dump(src))
                if isinstance(src, ast.Name):
                    rename_src_names.add(src.id)
        if not writes:
            return []
        findings: List[Finding] = []
        has_rename = bool(rename_src_dumps)
        for call in writes:
            if sf.waived(call, self.id, self.shorthand):
                continue
            target = call.args[0] if call.args else None
            atomic = False
            if has_mkstemp and has_rename:
                # the fd/tmp pair from mkstemp feeds fdopen + replace
                atomic = True
            elif target is not None and has_rename:
                if isinstance(target, ast.Name) and target.id in rename_src_names:
                    atomic = True
                elif ast.dump(target) in rename_src_dumps:
                    atomic = True
            if atomic:
                continue
            where = ast.unparse(target) if target is not None else "<no path>"
            findings.append(
                self.finding(
                    sf.relpath,
                    call.lineno,
                    f"write-mode open of {where!r} is not followed by "
                    "os.replace of the written path — readers can observe "
                    "a torn file; use the mkstemp+os.replace idiom",
                    sf.qualname(call) or func.name,
                )
            )
        return findings
