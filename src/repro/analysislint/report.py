"""Reporters: human-readable text and machine-readable JSON.

Both render the same :class:`~repro.analysislint.runner.LintResult`;
the text form is what CI prints on failure, the JSON form is for
tooling (and for the unit tests, which assert on structure instead of
scraping text).
"""

from __future__ import annotations

import json
from typing import List

from repro.analysislint.baseline import BaselineSplit
from repro.analysislint.core import Finding


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_text(split: BaselineSplit, checked_files: int) -> str:
    """The human report: new findings first, then baseline noise."""
    lines: List[str] = []
    for finding in _sorted(split.new):
        lines.append(finding.render())
    if split.baselined:
        lines.append("")
        lines.append(f"baselined (tolerated) findings: {len(split.baselined)}")
        for finding in _sorted(split.baselined):
            lines.append(f"  {finding.render()}")
    if split.stale:
        lines.append("")
        lines.append(
            "stale baseline entries (fixed or renamed — prune with "
            "--update-baseline):"
        )
        for fp in split.stale:
            lines.append(f"  {fp}")
    lines.append("")
    lines.append(
        f"analysislint: {checked_files} files, "
        f"{len(split.new)} new finding(s), "
        f"{len(split.baselined)} baselined, "
        f"{len(split.stale)} stale baseline entr(y/ies)"
    )
    return "\n".join(lines)


def render_json(split: BaselineSplit, checked_files: int) -> str:
    """Machine-readable report: files scanned, new/baselined/stale."""
    payload = {
        "files": checked_files,
        "new": [f.as_dict() for f in _sorted(split.new)],
        "baselined": [f.as_dict() for f in _sorted(split.baselined)],
        "stale_baseline": split.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
