"""Reporters: human-readable text and machine-readable JSON.

Both render the same :class:`~repro.analysislint.runner.LintResult`;
the text form is what CI prints on failure, the JSON form is for
tooling (and for the unit tests, which assert on structure instead of
scraping text).  Beyond the new/baselined/stale-baseline split, both
carry two report-only sections that never affect the exit code:
``warnings`` (findings from rules configured ``severity = "warn"``)
and ``stale_waivers`` (``# lint:`` comments that suppressed nothing —
suppressions must not rot silently).
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.analysislint.baseline import BaselineSplit
from repro.analysislint.core import Finding

#: (relpath, line, waiver token) of one stale ``# lint:`` comment.
StaleWaiver = Tuple[str, int, str]


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_text(
    split: BaselineSplit,
    checked_files: int,
    warnings: Optional[List[Finding]] = None,
    stale_waivers: Optional[List[StaleWaiver]] = None,
) -> str:
    """The human report: new findings first, then baseline noise."""
    warnings = warnings or []
    stale_waivers = stale_waivers or []
    lines: List[str] = []
    for finding in _sorted(split.new):
        lines.append(finding.render())
    if warnings:
        lines.append("")
        lines.append(f"warnings (severity=warn, never fail --check): {len(warnings)}")
        for finding in _sorted(warnings):
            lines.append(f"  {finding.render()}")
    if split.baselined:
        lines.append("")
        lines.append(f"baselined (tolerated) findings: {len(split.baselined)}")
        for finding in _sorted(split.baselined):
            lines.append(f"  {finding.render()}")
    if split.stale:
        lines.append("")
        lines.append(
            "stale baseline entries (fixed or renamed — prune with "
            "--update-baseline):"
        )
        for fp in split.stale:
            lines.append(f"  {fp}")
    if stale_waivers:
        lines.append("")
        lines.append(
            "stale waivers (suppressing nothing any more — remove them):"
        )
        for relpath, line, token in sorted(stale_waivers):
            lines.append(f"  {relpath}:{line}: # lint: {token}")
    lines.append("")
    lines.append(
        f"analysislint: {checked_files} files, "
        f"{len(split.new)} new finding(s), "
        f"{len(split.baselined)} baselined, "
        f"{len(split.stale)} stale baseline entr(y/ies), "
        f"{len(warnings)} warning(s), "
        f"{len(stale_waivers)} stale waiver(s)"
    )
    return "\n".join(lines)


def render_json(
    split: BaselineSplit,
    checked_files: int,
    warnings: Optional[List[Finding]] = None,
    stale_waivers: Optional[List[StaleWaiver]] = None,
) -> str:
    """Machine-readable report: files scanned, new/baselined/stale."""
    payload = {
        "files": checked_files,
        "new": [f.as_dict() for f in _sorted(split.new)],
        "baselined": [f.as_dict() for f in _sorted(split.baselined)],
        "stale_baseline": split.stale,
        "warnings": [f.as_dict() for f in _sorted(warnings or [])],
        "stale_waivers": [
            {"path": relpath, "line": line, "token": token}
            for relpath, line, token in sorted(stale_waivers or [])
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
