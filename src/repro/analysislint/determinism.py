"""DET rules — the simulated machine must be a pure function of its
inputs.

Two runs with the same config and traces must produce bit-identical
``RunResult``\\ s (the store keys results by config fingerprint, the
golden loop-equivalence tests diff whole stats dicts, and CI reruns
everything on three interpreters).  Wall-clock reads, unseeded
randomness, and set-iteration order are the three ways Python code
silently breaks that, so inside ``repro.{controller,dram,cpu,cache,
prefetch,system}`` they are banned outright:

* ``DET001`` — wall-clock/monotonic reads (``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``time.time_ns``, ...).
  ``repro.telemetry`` and ``repro.perf`` are allowlisted: tracer
  self-measurement is *about* wall-clock time.
* ``DET002`` — module-level ``random.*`` calls and bare seeded-nowhere
  helpers (``random()``, ``randint``...).  Seeded ``random.Random(seed)``
  instances are fine — the workloads package builds its traces from
  them, outside the simulated machine.
* ``DET003`` — ``os.urandom`` / ``uuid.uuid4`` / ``secrets.*``.
* ``DET004`` — ``for`` iteration over a set expression (literal,
  ``set()`` constructor, set comprehension, or a name/attribute the
  module itself binds to one).  Iteration order of a set depends on
  insertion/hash history; sorted(...) it or keep a list.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysislint.config import LintConfig
from repro.analysislint.core import Finding, SourceFile, SourceTree, call_name
from repro.analysislint.rules import Rule

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "getrandbits",
    "randbytes",
}

_ENTROPY_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}


def _allowlisted(sf: SourceFile, config: LintConfig) -> bool:
    return any(marker in sf.relpath for marker in config.wallclock_allowlist)


def _sim_files(tree: SourceTree, config: LintConfig) -> Iterable[SourceFile]:
    for sf in tree.in_packages(set(config.sim_packages)):
        if not _allowlisted(sf, config):
            yield sf


class WallClockRule(Rule):
    """DET001: no wall-clock reads inside the simulated machine."""

    id = "DET001"
    title = "no wall-clock reads inside the simulated machine"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in _sim_files(tree, self.config):
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in _WALLCLOCK_CALLS or name.endswith(".perf_counter"):
                    if sf.waived(node, self.id):
                        continue
                    findings.append(
                        self.finding(
                            sf.relpath,
                            node.lineno,
                            f"wall-clock call {name}() — simulator state must "
                            "be a pure function of config+trace",
                            sf.qualname(node),
                        )
                    )
        return findings


class UnseededRandomRule(Rule):
    """DET002: only explicitly seeded ``random.Random`` instances."""

    id = "DET002"
    title = "no unseeded randomness inside the simulated machine"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in _sim_files(tree, self.config):
            # names imported from the random module in this file
            imported: Set[str] = set()
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ImportFrom) and node.module == "random":
                    imported.update(
                        a.asname or a.name
                        for a in node.names
                        if a.name != "Random"
                    )
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                hit = (
                    name.startswith("random.")
                    and name.split(".")[-1] in _RANDOM_FUNCS
                ) or name in imported
                if hit and not sf.waived(node, self.id):
                    findings.append(
                        self.finding(
                            sf.relpath,
                            node.lineno,
                            f"module-level random call {name}() — only "
                            "explicitly seeded random.Random instances are "
                            "reproducible",
                            sf.qualname(node),
                        )
                    )
        return findings


class UrandomRule(Rule):
    """DET003: no OS entropy (``os.urandom``, ``secrets``)."""

    id = "DET003"
    title = "no OS entropy inside the simulated machine"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in _sim_files(tree, self.config):
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if (
                    name in _ENTROPY_CALLS or name.startswith("secrets.")
                ) and not sf.waived(node, self.id):
                    findings.append(
                        self.finding(
                            sf.relpath,
                            node.lineno,
                            f"OS entropy call {name}() in simulator code",
                            sf.qualname(node),
                        )
                    )
        return findings


class SetIterationRule(Rule):
    """DET004: no iteration over sets (order depends on hash seeding)."""

    id = "DET004"
    title = "no iteration over sets inside the simulated machine"
    shorthand = "set-iter-ok"

    def check(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for sf in _sim_files(tree, self.config):
            set_names = self._set_bindings(sf)
            for node in ast.walk(sf.tree):
                if not isinstance(node, (ast.For, ast.comprehension)):
                    continue
                iter_expr = node.iter
                line = getattr(node, "lineno", iter_expr.lineno)
                if self._is_set_expr(iter_expr, set_names) and not sf.waived(
                    line, self.id, self.shorthand
                ):
                    findings.append(
                        self.finding(
                            sf.relpath,
                            line,
                            "iterating a set — order depends on hash/"
                            "insertion history; use sorted(...) or a list",
                            sf.qualname(iter_expr),
                        )
                    )
        return findings

    @staticmethod
    def _set_bindings(sf: SourceFile) -> Set[str]:
        """Names/attrs this module binds to set values or annotates Set."""
        names: Set[str] = set()
        for node in ast.walk(sf.tree):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                ann = ast.unparse(node.annotation)
                if ann.split("[")[0] in ("Set", "set", "typing.Set"):
                    names.add(SetIterationRule._bind_name(target) or "")
            if target is None or value is None:
                continue
            if isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            ):
                bound = SetIterationRule._bind_name(target)
                if bound:
                    names.add(bound)
        names.discard("")
        return names

    @staticmethod
    def _bind_name(target: ast.AST) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return ""

    @staticmethod
    def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in set_names
        return False
