"""Baseline handling — grandfathering findings without losing teeth.

The baseline file (default ``.lint-baseline.json``, committed at the
repo root) holds the fingerprints of findings that predate a rule and
are accepted for now.  The runner splits findings into *new* (fail CI)
and *baselined* (reported, tolerated); baseline entries that no longer
match anything are *stale* and reported so the file shrinks over time
instead of rotting.

Fingerprints are line- and path-free (rule, enclosing symbol,
message), so neither unrelated edits to a file nor renaming/moving the
file un-baseline its grandfathered findings.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysislint.core import Finding

DEFAULT_BASELINE = ".lint-baseline.json"


@dataclass
class BaselineSplit:
    """Findings partitioned against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)  # unmatched fingerprints


def load_baseline(path: str) -> List[str]:
    """Fingerprints from a baseline file (missing file = empty)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("findings", [])
    out: List[str] = []
    for entry in data:
        if isinstance(entry, str):
            out.append(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            out.append(str(entry["fingerprint"]))
    return out


def save_baseline(path: str, findings: List[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    fingerprints = sorted({f.fingerprint() for f in findings})
    payload: Dict[str, object] = {
        "comment": (
            "Grandfathered analysislint findings; see docs/linting.md. "
            "Regenerate with tools/lint.py --update-baseline."
        ),
        "findings": fingerprints,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_against_baseline(
    findings: List[Finding], baseline: List[str]
) -> BaselineSplit:
    """Partition ``findings`` into new vs baselined, noting stale entries."""
    known = set(baseline)
    split = BaselineSplit()
    matched = set()
    for finding in findings:
        fp = finding.fingerprint()
        if fp in known:
            split.baselined.append(finding)
            matched.add(fp)
        else:
            split.new.append(finding)
    split.stale = sorted(known - matched)
    return split
