"""The Power5+-like three-level write-back hierarchy and its miss path.

The hierarchy answers two questions for the core: *where did this access
hit* (which fixes its latency) and *which dirty lines fell out to memory*
(which become DRAM writes).  Demand fills from memory and processor-side
prefetch fills come back through :meth:`CacheHierarchy.fill_from_memory`.

Store misses use write-validate allocation: the line is installed dirty
without fetching it from DRAM.  This keeps the core from stalling on
stores while still producing realistic DRAM write traffic through dirty
evictions — see DESIGN.md Section 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.cache import Cache
from repro.common.config import HierarchyConfig
from repro.common.stats import Stats


class Level(enum.Enum):
    """Where in the hierarchy an access was satisfied."""

    L1 = 1
    L2 = 2
    L3 = 3
    MEMORY = 4


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access.

    ``latency_cpu`` is meaningful for cache hits; for ``Level.MEMORY`` the
    latency is determined later by the memory controller.  ``writebacks``
    lists dirty L3 victims that must become DRAM writes.
    """

    level: Level
    latency_cpu: int
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """L1D + shared L2 + off-chip L3, write-back, write-validate stores."""

    def __init__(self, config: HierarchyConfig) -> None:
        config.validate()
        self.config = config
        self.l1 = Cache(config.l1, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.l3 = Cache(config.l3, "L3")
        self.stats = Stats()
        # hot path: access() adds straight into the counter mapping
        self._stat_values = self.stats.raw()

    # ------------------------------------------------------------------
    # internal fill plumbing
    # ------------------------------------------------------------------
    def _fill_l3(self, line: int, dirty: bool, writebacks: List[int]) -> None:
        ev = self.l3.fill(line, dirty)
        if ev is not None and ev.dirty:
            writebacks.append(ev.line)

    def _fill_l2(self, line: int, dirty: bool, writebacks: List[int]) -> None:
        # The L3 is a victim cache of the L2 (Power5 castout path): every
        # L2 victim, clean or dirty, is installed in the L3.
        ev = self.l2.fill(line, dirty)
        if ev is not None:
            self._fill_l3(ev.line, ev.dirty, writebacks)

    def _fill_l1(self, line: int, dirty: bool, writebacks: List[int]) -> None:
        ev = self.l1.fill(line, dirty)
        if ev is not None and ev.dirty:
            self._fill_l2(ev.line, True, writebacks)

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def access(self, line: int, write: bool = False) -> AccessResult:
        """One demand load/store at line granularity."""
        writebacks: List[int] = []
        values = self._stat_values
        if self.l1.lookup(line, write):
            values["l1_hits"] += 1
            return AccessResult(Level.L1, self.config.l1.latency, writebacks)

        if self.l2.lookup(line):
            values["l2_hits"] += 1
            self._fill_l1(line, write, writebacks)
            return AccessResult(Level.L2, self.config.l2.latency, writebacks)

        if self.l3.lookup(line):
            values["l3_hits"] += 1
            self._fill_l2(line, False, writebacks)
            self._fill_l1(line, write, writebacks)
            return AccessResult(Level.L3, self.config.l3.latency, writebacks)

        values["memory_accesses"] += 1
        if write:
            # write-validate: install dirty without a memory read
            self._fill_l1(line, True, writebacks)
            values["write_validates"] += 1
            return AccessResult(Level.MEMORY, self.config.l2.latency, writebacks)
        return AccessResult(Level.MEMORY, 0, writebacks)

    def fill_from_memory(self, line: int, to_l1: bool = True) -> List[int]:
        """Install a line that arrived from DRAM; returns dirty L3 victims.

        Demand-load fills and L1-destined processor-side prefetches pass
        ``to_l1=True``; L2-destined prefetches stop at L2.
        """
        writebacks: List[int] = []
        self._fill_l2(line, False, writebacks)
        if to_l1:
            self._fill_l1(line, False, writebacks)
        return writebacks

    # ------------------------------------------------------------------
    # queries used by the processor-side prefetcher
    # ------------------------------------------------------------------
    def present_level(self, line: int) -> Optional[Level]:
        """Highest level currently holding the line, without side effects."""
        if self.l1.contains(line):
            return Level.L1
        if self.l2.contains(line):
            return Level.L2
        if self.l3.contains(line):
            return Level.L3
        return None

    def cached_anywhere(self, line: int) -> bool:
        return self.present_level(line) is not None
