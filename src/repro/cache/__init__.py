"""Set-associative cache model and the Power5+ three-level hierarchy.

Caches here are *contents-accurate, latency-abstract*: hits and misses,
fills, dirty bits and evictions are modelled exactly; a hit's cost is the
level's fixed latency.  That is the fidelity the paper's mechanisms need
— the memory-side prefetcher only ever sees the post-cache read stream.
"""

from repro.cache.cache import Cache, Eviction
from repro.cache.hierarchy import AccessResult, CacheHierarchy, Level
from repro.cache.replacement import LRUPolicy, ReplacementPolicy, TreePLRUPolicy

__all__ = [
    "AccessResult",
    "Cache",
    "CacheHierarchy",
    "Eviction",
    "Level",
    "LRUPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
]
