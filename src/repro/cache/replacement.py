"""Replacement policies for set-associative structures.

A policy instance manages victim selection for *one cache*; it is told
about touches and fills per (set, way) and asked for a victim way when a
set is full.  LRU is the policy the paper assumes for the Prefetch
Buffer; tree-PLRU is provided as the cheaper hardware-realistic variant
used by large L2/L3 arrays.
"""

from __future__ import annotations

from typing import List


class ReplacementPolicy:
    """Interface: victim selection and usage tracking for one cache."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc

    def touch(self, set_index: int, way: int) -> None:
        """Record a hit on (set, way)."""
        raise NotImplementedError

    def fill(self, set_index: int, way: int) -> None:
        """Record a fill into (set, way)."""
        self.touch(set_index, way)

    def victim(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via per-set recency stacks."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        # stacks[s] lists ways from LRU (front) to MRU (back)
        self._stacks: List[List[int]] = [
            list(range(assoc)) for _ in range(num_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.append(way)

    def victim(self, set_index: int) -> int:
        return self._stacks[set_index][0]


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (binary decision tree per set).

    Associativity must be a power of two; for other associativities the
    tree covers the next power of two and out-of-range victims fall back
    to way 0 (matching common hardware padding).
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._leaves = 1
        while self._leaves < assoc:
            self._leaves *= 2
        # one flat array of internal-node bits per set
        self._bits: List[List[bool]] = [
            [False] * max(1, self._leaves - 1) for _ in range(num_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            went_right = way >= mid
            bits[node] = not went_right  # point away from the touched half
            node = 2 * node + (2 if went_right else 1)
            if went_right:
                lo = mid
            else:
                hi = mid

    def victim(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            go_right = bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                lo = mid
            else:
                hi = mid
        return lo if lo < self.assoc else 0
