"""One set-associative cache level.

Lines are identified by their global line address; the set index is the
low bits of the line address and the remainder is the tag.  The cache
tracks dirty bits and reports evictions so a write-back hierarchy can
turn dirty victims into DRAM writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.replacement import (
    LRUPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
)
from repro.common.config import CacheConfig
from repro.common.stats import Stats


@dataclass(frozen=True, slots=True)
class Eviction:
    """A line pushed out of the cache by a fill."""

    line: int
    dirty: bool


class Cache:
    """Contents-accurate set-associative cache with pluggable replacement."""

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        if policy is not None:
            self.policy = policy
        elif config.replacement == "tree_plru":
            self.policy = TreePLRUPolicy(self.num_sets, self.assoc)
        else:
            self.policy = LRUPolicy(self.num_sets, self.assoc)
        # per set: way -> line  and  way -> dirty
        self._lines: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._dirty: List[Dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        # reverse map per set: line -> way (fast lookup)
        self._where: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self.stats = Stats()
        # hot path: lookup/fill add straight into the underlying
        # counter mapping (see Stats.raw)
        self._stat_values = self.stats.raw()

    # ------------------------------------------------------------------
    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def contains(self, line: int) -> bool:
        """Presence check with no replacement-state side effects."""
        return line in self._where[self.set_index(line)]

    def lookup(self, line: int, write: bool = False) -> bool:
        """Access the cache: returns True on hit (updating recency/dirty)."""
        s = line % self.num_sets
        way = self._where[s].get(line)
        if way is None:
            self._stat_values["misses"] += 1
            return False
        self._stat_values["hits"] += 1
        self.policy.touch(s, way)
        if write:
            self._dirty[s][way] = True
        return True

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Install ``line``; returns the eviction it caused, if any.

        Filling a line that is already present only updates recency and
        ORs in the dirty bit (a prefetch fill must not lose a dirty bit).
        """
        s = line % self.num_sets
        where = self._where[s]
        existing = where.get(line)
        if existing is not None:
            self.policy.touch(s, existing)
            if dirty:
                self._dirty[s][existing] = True
            return None

        values = self._stat_values
        lines = self._lines[s]
        dirty_map = self._dirty[s]
        if len(lines) < self.assoc:
            # take the lowest-numbered free way
            way = next(w for w in range(self.assoc) if w not in lines)
            evicted = None
        else:
            way = self.policy.victim(s)
            old_line = lines[way]
            evicted = Eviction(old_line, dirty_map.get(way, False))
            del where[old_line]
            values["evictions"] += 1
            if evicted.dirty:
                values["dirty_evictions"] += 1
        lines[way] = line
        dirty_map[way] = dirty
        where[line] = way
        self.policy.fill(s, way)
        values["fills"] += 1
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present (dirty data is discarded); True if hit."""
        s = self.set_index(line)
        way = self._where[s].pop(line, None)
        if way is None:
            return False
        del self._lines[s][way]
        self._dirty[s].pop(way, None)
        self.stats.bump("invalidations")
        return True

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._lines)

    def resident_lines(self):
        """Iterate over all resident line addresses (test/debug helper)."""
        for s in self._lines:
            yield from s.values()
